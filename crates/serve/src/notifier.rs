//! Fan-out of streamed progress events to subscribed connections.
//!
//! Each client connection that issues `watch` registers an
//! [`std::sync::mpsc::Sender`] here; a per-connection writer thread owns
//! the socket and drains the channel, so the executor never blocks on a
//! slow client — a wedged connection's channel fills its buffer and is
//! dropped from the subscription list the next time a send fails
//! (channel closed when the writer thread exits).

use std::sync::mpsc::Sender;
use std::sync::Mutex;

use crate::json::Json;

struct Sub {
    /// `None` subscribes to every job's events.
    job: Option<String>,
    tx: Sender<String>,
}

/// Subscription registry shared by the server and the executor.
#[derive(Default)]
pub struct Notifier {
    subs: Mutex<Vec<Sub>>,
}

impl Notifier {
    /// Creates an empty registry.
    pub fn new() -> Notifier {
        Notifier::default()
    }

    /// Registers a subscriber for one job's events (or all jobs' when
    /// `job` is `None`).
    ///
    /// # Panics
    ///
    /// Panics if the subscription mutex is poisoned (never: no panics
    /// under it).
    pub fn subscribe(&self, job: Option<String>, tx: Sender<String>) {
        self.subs.lock().unwrap().push(Sub { job, tx });
    }

    /// Sends `event` (serialized once) to every live subscriber of
    /// `job_id`; subscribers whose connection has gone away are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the subscription mutex is poisoned (never: no panics
    /// under it).
    pub fn publish(&self, job_id: &str, event: &Json) {
        let line = event.to_string();
        let mut subs = self.subs.lock().unwrap();
        subs.retain(|s| {
            if s.job.as_deref().is_some_and(|j| j != job_id) {
                return true; // not interested, but still alive
            }
            s.tx.send(line.clone()).is_ok()
        });
    }
}

/// Builds a progress event line.
pub fn progress_event(job_id: &str, done_units: usize, total_units: usize) -> Json {
    Json::obj(vec![
        ("event", Json::str("progress")),
        ("id", Json::str(job_id)),
        ("done_units", Json::num_u64(done_units as u64)),
        ("total_units", Json::num_u64(total_units as u64)),
    ])
}

/// Builds a job-completion event line.
pub fn done_event(job_id: &str, outcome: &str) -> Json {
    Json::obj(vec![
        ("event", Json::str("done")),
        ("id", Json::str(job_id)),
        ("outcome", Json::str(outcome)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn publish_routes_by_job_and_drops_dead_subscribers() {
        let n = Notifier::new();
        let (tx_a, rx_a) = mpsc::channel();
        let (tx_all, rx_all) = mpsc::channel();
        let (tx_dead, rx_dead) = mpsc::channel();
        n.subscribe(Some("j000001".to_string()), tx_a);
        n.subscribe(None, tx_all);
        n.subscribe(Some("j000002".to_string()), tx_dead);
        drop(rx_dead);

        n.publish("j000001", &progress_event("j000001", 1, 4));
        n.publish("j000002", &done_event("j000002", "ok"));

        let got = rx_a.try_recv().unwrap();
        assert!(got.contains("\"done_units\":1"), "{got}");
        assert!(rx_a.try_recv().is_err(), "job-scoped sub saw another job");
        assert_eq!(rx_all.try_iter().count(), 2);

        // The dead j000002 subscriber was pruned on the failed send.
        n.publish("j000002", &done_event("j000002", "ok"));
        assert_eq!(rx_all.try_iter().count(), 1);
    }
}
