//! Campaign service daemon CLI.
//!
//! ```text
//! ftdircmp-serve serve     --root DIR [--addr HOST:PORT] [--jobs N] [--max-pending N]
//! ftdircmp-serve submit    (--addr HOST:PORT | --root DIR) [--file JOB.json] [--wait]
//! ftdircmp-serve ctl       (--addr HOST:PORT | --root DIR) '<request json>'
//! ftdircmp-serve run-local --root DIR --file JOB.json [--id ID] [--jobs N]
//! ftdircmp-serve json-check
//! ```
//!
//! `submit` reads the job spec from `--file` (or stdin), submits it and
//! prints the assigned id; with `--wait` it watches the stream and exits
//! when the job's done event arrives (exit status reflects the outcome).
//! `run-local` executes the same job synchronously through the identical
//! code path the daemon uses, so its stored summary is byte-comparable.
//! `json-check` validates stdin as line-delimited JSON (used by
//! `scripts/bench.sh` to guard trajectory appends).

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ftdircmp_serve::job::JobSpec;
use ftdircmp_serve::json::Json;
use ftdircmp_serve::runner::{execute_job, OUTCOME_OK};
use ftdircmp_serve::server::{serve, ServeOptions};
use ftdircmp_serve::store::Store;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "ctl" => cmd_ctl(rest),
        "run-local" => cmd_run_local(rest),
        "json-check" => cmd_json_check(),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ftdircmp-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  ftdircmp-serve serve     --root DIR [--addr HOST:PORT] [--jobs N] [--max-pending N]
  ftdircmp-serve submit    (--addr HOST:PORT | --root DIR) [--file JOB.json] [--wait]
  ftdircmp-serve ctl       (--addr HOST:PORT | --root DIR) '<request json>'
  ftdircmp-serve run-local --root DIR --file JOB.json [--id ID] [--jobs N]
  ftdircmp-serve json-check";

/// Minimal flag scanner: `--key value` pairs plus positionals.
struct Flags {
    pairs: Vec<(String, String)>,
    positionals: Vec<String>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], switches: &[&str]) -> Result<Flags, String> {
        let mut f = Flags {
            pairs: Vec::new(),
            positionals: Vec::new(),
            switches: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if switches.contains(&key) {
                    f.switches.push(key.to_string());
                } else {
                    let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                    f.pairs.push((key.to_string(), v.clone()));
                }
            } else {
                f.positionals.push(a.clone());
            }
        }
        Ok(f)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    fn get_num(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number {v:?}")),
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let f = Flags::parse(args, &[])?;
    let root = f.get("root").ok_or("serve needs --root DIR")?;
    let options = ServeOptions {
        addr: f.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        jobs: f.get_num("jobs", 1)?,
        max_pending: f.get_num("max-pending", 64)?,
    };
    serve(Path::new(root), &options).map_err(|e| format!("serve: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

/// Resolves a daemon address from `--addr` or a queue root's `port` file.
fn resolve_addr(f: &Flags) -> Result<String, String> {
    if let Some(addr) = f.get("addr") {
        return Ok(addr.to_string());
    }
    let root = f
        .get("root")
        .ok_or("need --addr HOST:PORT or --root DIR (with a running daemon)")?;
    let port_file = PathBuf::from(root).join("port");
    let text = std::fs::read_to_string(&port_file)
        .map_err(|e| format!("reading {}: {e}", port_file.display()))?;
    Ok(format!("127.0.0.1:{}", text.trim()))
}

fn read_job_text(f: &Flags) -> Result<String, String> {
    if let Some(path) = f.get("file") {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    } else {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(text)
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cloning socket: {e}"))?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, request: &Json) -> Result<(), String> {
        let mut line = request.to_string();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("sending request: {e}"))
    }

    fn recv(&mut self) -> Result<Json, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("reading reply: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".to_string());
        }
        Json::parse(line.trim()).map_err(|e| format!("bad reply {line:?}: {e}"))
    }

    fn call(&mut self, request: &Json) -> Result<Json, String> {
        self.send(request)?;
        self.recv()
    }
}

fn expect_ok(reply: &Json) -> Result<(), String> {
    if reply.get("ok") == Some(&Json::Bool(true)) {
        Ok(())
    } else {
        Err(reply
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("daemon refused the request")
            .to_string())
    }
}

fn cmd_submit(args: &[String]) -> Result<ExitCode, String> {
    let f = Flags::parse(args, &["wait"])?;
    let addr = resolve_addr(&f)?;
    let text = read_job_text(&f)?;
    let job_json = Json::parse(text.trim()).map_err(|e| format!("job spec: {e}"))?;
    // Validate locally so the error names the field, then send verbatim.
    JobSpec::from_json(&job_json)?;

    let mut client = Client::connect(&addr)?;
    if f.has("wait") {
        // Subscribe before submitting so no event can be missed.
        let watch = client.call(&Json::obj(vec![("cmd", Json::str("watch"))]))?;
        expect_ok(&watch)?;
    }
    let reply = client.call(&Json::obj(vec![
        ("cmd", Json::str("submit")),
        ("job", job_json),
    ]))?;
    expect_ok(&reply)?;
    let id = reply
        .get("id")
        .and_then(Json::as_str)
        .ok_or("daemon reply missing id")?
        .to_string();
    println!("{id}");
    if !f.has("wait") {
        return Ok(ExitCode::SUCCESS);
    }
    loop {
        let event = client.recv()?;
        if event.get("id").and_then(Json::as_str) != Some(&id) {
            continue;
        }
        match event.get("event").and_then(Json::as_str) {
            Some("progress") => {
                let done = event.get("done_units").and_then(Json::as_u64).unwrap_or(0);
                let total = event.get("total_units").and_then(Json::as_u64).unwrap_or(0);
                eprintln!("{id}: {done}/{total} units");
            }
            Some("done") => {
                let outcome = event
                    .get("outcome")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown");
                eprintln!("{id}: {outcome}");
                return Ok(if outcome == OUTCOME_OK {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                });
            }
            _ => {}
        }
    }
}

fn cmd_ctl(args: &[String]) -> Result<ExitCode, String> {
    let f = Flags::parse(args, &[])?;
    let addr = resolve_addr(&f)?;
    let request_text = f
        .positionals
        .first()
        .ok_or("ctl needs a request, e.g. '{\"cmd\":\"list\"}'")?;
    let request = Json::parse(request_text).map_err(|e| format!("request: {e}"))?;
    let mut client = Client::connect(&addr)?;
    let reply = client.call(&request)?;
    println!("{reply}");
    Ok(if reply.get("ok") == Some(&Json::Bool(true)) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_run_local(args: &[String]) -> Result<ExitCode, String> {
    let f = Flags::parse(args, &[])?;
    let root = f.get("root").ok_or("run-local needs --root DIR")?;
    let text = read_job_text(&f)?;
    let job_json = Json::parse(text.trim()).map_err(|e| format!("job spec: {e}"))?;
    let spec = JobSpec::from_json(&job_json)?;
    let jobs = f.get_num("jobs", 1)?;
    let store = Store::open(Path::new(root)).map_err(|e| format!("opening {root}: {e}"))?;
    // Default id "local": run-local roots are single-job scratch
    // directories. `--id j000001` makes the stored summary byte-comparable
    // with a daemon-produced result for the same spec (CI smoke test).
    let id = f.get("id").unwrap_or("local");
    let outcome = execute_job(&store, id, &spec, jobs, &|done, total| {
        eprintln!("{id}: {done}/{total} units");
    })
    .map_err(|e| format!("running job: {e}"))?;
    let summary = store
        .read_summary(id)
        .map_err(|e| format!("reading summary: {e}"))?
        .ok_or("summary missing after run")?;
    print!("{summary}");
    Ok(if outcome == OUTCOME_OK {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_json_check() -> Result<ExitCode, String> {
    let stdin = std::io::stdin();
    let mut bad = 0usize;
    for (n, line) in stdin.lock().lines().enumerate() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        if let Err(e) = Json::parse(line.trim()) {
            eprintln!("line {}: {e}", n + 1);
            bad += 1;
        }
    }
    Ok(if bad == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
