//! End-to-end tests against the real `ftdircmp-serve` daemon binary:
//! concurrent clients, kill -9 crash-resume, and poison-job quarantine.

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ftdircmp_serve::job::JobSpec;
use ftdircmp_serve::json::Json;
use ftdircmp_serve::runner::execute_job;
use ftdircmp_serve::store::Store;

const STARTUP_TIMEOUT: Duration = Duration::from_secs(30);
const JOB_TIMEOUT: Duration = Duration::from_mins(5);

struct Daemon {
    child: Child,
    root: PathBuf,
}

impl Daemon {
    fn start(root: &Path, jobs: usize) -> Daemon {
        // A restart must not read the previous incarnation's port file.
        let _ = std::fs::remove_file(root.join("port"));
        let child = Command::new(env!("CARGO_BIN_EXE_ftdircmp-serve"))
            .args([
                "serve",
                "--root",
                root.to_str().unwrap(),
                "--jobs",
                &jobs.to_string(),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        Daemon {
            child,
            root: root.to_path_buf(),
        }
    }

    fn addr(&self) -> String {
        let port_file = self.root.join("port");
        let deadline = Instant::now() + STARTUP_TIMEOUT;
        loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                let port = text.trim();
                if !port.is_empty() {
                    return format!("127.0.0.1:{port}");
                }
            }
            assert!(Instant::now() < deadline, "daemon never published a port");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// SIGKILL — the crash the resume contract is about.
    fn kill9(&mut self) {
        self.child.kill().expect("kill daemon");
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        let mut conn = Conn::connect(&self.addr());
        let reply = conn.call(r#"{"cmd":"shutdown"}"#);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Streamed events that arrived while waiting for a command reply.
    pending_events: Vec<String>,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let deadline = Instant::now() + STARTUP_TIMEOUT;
        loop {
            if let Ok(stream) = TcpStream::connect(addr) {
                let writer = stream.try_clone().expect("clone socket");
                return Conn {
                    reader: BufReader::new(stream),
                    writer,
                    pending_events: Vec::new(),
                };
            }
            assert!(Instant::now() < deadline, "daemon never accepted at {addr}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Sends a command and returns its reply, buffering any streamed
    /// events that arrive in between (a watching connection receives
    /// event lines interleaved with replies).
    fn call(&mut self, request: &str) -> String {
        self.send(request);
        loop {
            let line = self.recv_line();
            let parsed = Json::parse(&line).expect("line parses");
            if parsed.get("event").is_some() {
                self.pending_events.push(line);
            } else {
                return line;
            }
        }
    }

    fn send(&mut self, request: &str) {
        self.writer.write_all(request.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
    }

    fn recv_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "daemon closed the connection");
        line.trim_end().to_string()
    }

    /// Reads events until `id`'s done event arrives; returns its outcome.
    fn wait_done(&mut self, id: &str) -> String {
        let deadline = Instant::now() + JOB_TIMEOUT;
        loop {
            assert!(Instant::now() < deadline, "timed out waiting for {id}");
            let line = if self.pending_events.is_empty() {
                self.recv_line()
            } else {
                self.pending_events.remove(0)
            };
            let event = Json::parse(&line).expect("event parses");
            if event.get("id").and_then(Json::as_str) != Some(id) {
                continue;
            }
            if event.get("event").and_then(Json::as_str) == Some("done") {
                return event
                    .get("outcome")
                    .and_then(Json::as_str)
                    .expect("done event has outcome")
                    .to_string();
            }
        }
    }

    fn submit(&mut self, job: &str) -> String {
        let reply = self.call(&format!(r#"{{"cmd":"submit","job":{job}}}"#));
        let v = Json::parse(&reply).expect("reply parses");
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{reply}");
        v.get("id").and_then(Json::as_str).expect("id").to_string()
    }

    fn result(&mut self, id: &str) -> String {
        let reply = self.call(&format!(r#"{{"cmd":"result","id":"{id}"}}"#));
        let v = Json::parse(&reply).expect("reply parses");
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{reply}");
        v.get("summary")
            .and_then(Json::as_str)
            .expect("summary")
            .to_string()
    }
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftdircmp-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `job` synchronously through the identical executor code path the
/// daemon uses (under the same job id) and returns the stored summary.
fn reference_summary(tag: &str, id: &str, job: &str) -> String {
    let root = tmp_root(&format!("ref-{tag}"));
    let store = Store::open(&root).unwrap();
    let spec = JobSpec::from_json(&Json::parse(job).unwrap()).unwrap();
    execute_job(&store, id, &spec, 1, &|_, _| {}).unwrap();
    let summary = store.read_summary(id).unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&root);
    summary
}

#[test]
fn concurrent_clients_drain_deterministically() {
    let root = tmp_root("concurrent");
    let daemon = Daemon::start(&root, 2);
    let addr = daemon.addr();

    let job_a = r#"{"kind":"campaign","label":"a","specs":["barnes:ops=300"],"configs":[{"protocol":"dircmp"},{"protocol":"ftdircmp","fault_rate":500}],"seeds":2}"#;
    let job_b = r#"{"kind":"campaign","label":"b","specs":["fft:ops=300"],"configs":[{"protocol":"ftdircmp","fault_rate":1000}],"seeds":3}"#;

    let run_client = |job: &'static str| {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut conn = Conn::connect(&addr);
            // Watch before submitting so no event can be missed.
            let watch = conn.call(r#"{"cmd":"watch"}"#);
            assert!(watch.contains("\"ok\":true"), "{watch}");
            let id = conn.submit(job);
            let outcome = conn.wait_done(&id);
            assert_eq!(outcome, "ok");
            let summary = conn.result(&id);
            (id, summary)
        })
    };
    let ha = run_client(job_a);
    let hb = run_client(job_b);
    let (id_a, summary_a) = ha.join().unwrap();
    let (id_b, summary_b) = hb.join().unwrap();
    daemon.shutdown();

    // Results must be byte-identical to the same specs run synchronously
    // through the local executor, regardless of submission interleaving.
    assert_eq!(summary_a, reference_summary("a", &id_a, job_a));
    assert_eq!(summary_b, reference_summary("b", &id_b, job_b));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn kill9_mid_campaign_resumes_without_duplicating_or_losing_cells() {
    let root = tmp_root("kill9");
    let mut daemon = Daemon::start(&root, 1);
    let addr = daemon.addr();
    // Six sequential units at ~1s each (debug build): plenty of window to
    // land a SIGKILL after the first record but before the summary.
    let job = r#"{"kind":"campaign","label":"crashy","specs":["barnes:ops=4000"],"configs":[{"protocol":"ftdircmp","fault_rate":500}],"seeds":6}"#;
    let id = {
        let mut conn = Conn::connect(&addr);
        conn.submit(job)
    };

    // Wait for at least one durable unit record, then SIGKILL the daemon.
    let store = Store::open(&root).unwrap();
    let deadline = Instant::now() + JOB_TIMEOUT;
    loop {
        assert!(Instant::now() < deadline, "no unit record ever landed");
        if !store.load_unit_records(&id).unwrap().records.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    daemon.kill9();
    let before = store.load_unit_records(&id).unwrap();
    let done_before: Vec<u64> = before
        .records
        .iter()
        .map(|r| r.get("unit").and_then(Json::as_u64).unwrap())
        .collect();
    assert!(
        !store.is_done(&id),
        "campaign finished before the kill landed; grow the workload"
    );

    // Restart on the same root: the journal replays, the job re-enqueues,
    // and only the units whose records never landed run again.
    let daemon = Daemon::start(&root, 1);
    let addr = daemon.addr();
    let mut conn = Conn::connect(&addr);
    let watch = conn.call(&format!(r#"{{"cmd":"watch","id":"{id}"}}"#));
    assert!(watch.contains("\"ok\":true"), "{watch}");
    let outcome = conn.wait_done(&id);
    assert_eq!(outcome, "ok");
    let summary = conn.result(&id);
    daemon.shutdown();

    // No unit lost, none duplicated.
    let after = store.load_unit_records(&id).unwrap();
    let mut seen: Vec<u64> = after
        .records
        .iter()
        .map(|r| r.get("unit").and_then(Json::as_u64).unwrap())
        .collect();
    seen.sort_unstable();
    assert_eq!(seen, vec![0, 1, 2, 3, 4, 5], "each unit exactly once");
    // Pre-kill records survive verbatim (never re-run, never rewritten).
    for (i, rec) in done_before.iter().enumerate() {
        assert_eq!(
            after.records[i].get("unit").and_then(Json::as_u64),
            Some(*rec)
        );
    }
    // And the final summary is byte-identical to an uninterrupted run.
    assert_eq!(summary, reference_summary("kill9", &id, job));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn poisoned_job_is_quarantined_while_queue_keeps_serving() {
    let root = tmp_root("poison");
    let daemon = Daemon::start(&root, 1);
    let mut conn = Conn::connect(&daemon.addr());
    let watch = conn.call(r#"{"cmd":"watch"}"#);
    assert!(watch.contains("\"ok\":true"), "{watch}");

    // The poison job panics inside the executor; priority puts it first.
    let poison_id = conn.submit(r#"{"kind":"poison","label":"boom","priority":10}"#);
    let victim_id = conn.submit(
        r#"{"kind":"campaign","label":"survivor","specs":["barnes:ops=100"],"configs":[{"protocol":"dircmp"}],"seeds":1}"#,
    );

    assert_eq!(conn.wait_done(&poison_id), "quarantined");
    assert_eq!(conn.wait_done(&victim_id), "ok");

    // The quarantined job's summary preserves the panic for forensics.
    let poison_summary = conn.result(&poison_id);
    assert!(
        poison_summary.contains("poison job executed"),
        "{poison_summary}"
    );
    let status = conn.call(&format!(r#"{{"cmd":"status","id":"{poison_id}"}}"#));
    assert!(status.contains("\"outcome\":\"quarantined\""), "{status}");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
