//! Time-ordered event queue.
//!
//! Implemented as a *calendar queue*: a power-of-two ring of per-cycle
//! buckets covering the next [`RING_CYCLES`] cycles, plus a spill-over
//! binary heap for the rare event scheduled further out (timeout backoff
//! can exceed the ring window; ordinary protocol delays — link hops,
//! cache lookups, memory latency, first-shot timeouts — all fit). The
//! simulator's event density is roughly one event per cycle, so bucket
//! operations are O(1) pushes/pops and the scan to the next occupied
//! cycle is short; the criterion microbenches (`queue_*` in
//! `crates/bench/benches/simulator.rs`) compare this against the old
//! `BinaryHeap` on recorded same-cycle churn distributions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// Width of the calendar ring in cycles. Must be a power of two.
///
/// Sized so every common delay lands in the ring: same-cycle churn and
/// link hops (≤ a few cycles), memory latency (~160), and the FT
/// timeouts with backoff (base 2 000–8 000 cycles). Only deep backoff
/// retries spill to the overflow heap.
const RING_CYCLES: u64 = 16_384;

/// A deterministic, time-ordered event queue.
///
/// Events scheduled for the same cycle are delivered in the order they were
/// scheduled (FIFO tie-breaking), which keeps simulations reproducible.
///
/// The queue tracks the current simulated time: [`EventQueue::pop`] advances
/// [`EventQueue::now`] to the popped event's timestamp. Scheduling an event in
/// the past is a logic error and panics.
///
/// # Schedule perturbation
///
/// [`EventQueue::with_schedule_seed`] replaces FIFO tie-breaking with a
/// seeded pseudo-random permutation of same-cycle events: each scheduled
/// event gets a tie-break key mixed from `(schedule_seed, seq)`, so events
/// landing on the same cycle can be delivered in any order — but the order
/// is a pure function of the schedule seed, so every run is exactly
/// reproducible. Seed `0` is the identity permutation (plain FIFO), which
/// keeps all pre-perturbation expected outputs unchanged. Time order across
/// cycles is never affected.
///
/// Pop order is always the minimum of `(at, key, seq)` — byte-for-byte the
/// order the previous `BinaryHeap` implementation produced, for every seed.
///
/// # Example
///
/// ```
/// use ftdircmp_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule_in(3, 'b');
/// q.schedule_in(3, 'c'); // same time: FIFO order preserved
/// q.schedule_in(1, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Per-cycle buckets; slot `c & (RING_CYCLES - 1)` holds cycle `c`.
    /// All resident timestamps lie in `[now, now + RING_CYCLES)`, so no
    /// two distinct cycles ever share a slot.
    ring: Vec<Vec<Slot<E>>>,
    /// Events currently stored in `ring` (across all buckets).
    ring_events: usize,
    /// Events scheduled `>= RING_CYCLES` cycles out, ordered like the
    /// classic heap; migrated into the ring bucket when their cycle is
    /// entered.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Timestamp of the next event, kept exact across all operations.
    next_at: Option<Cycle>,
    /// Whether the bucket for `now` has been entered (migrated + sorted
    /// descending) and is being drained from the back.
    entered: bool,
    seq: u64,
    now: Cycle,
    scheduled_total: u64,
    schedule_seed: u64,
}

/// A ring-bucket entry. The cycle is implicit in the bucket.
#[derive(Debug, Clone)]
struct Slot<E> {
    /// Tie-break key: equals `seq` under FIFO, a seeded hash of `seq` under
    /// schedule perturbation.
    key: u64,
    seq: u64,
    event: E,
}

#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: Cycle,
    key: u64,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event
// (and, within a cycle, the lowest tie-break key) first. `seq` is unique and
// breaks key collisions, keeping the order total in every case.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero with FIFO tie-breaking.
    pub fn new() -> Self {
        EventQueue::with_schedule_seed(0)
    }

    /// Creates an empty queue whose same-cycle tie-breaking is a seeded
    /// permutation. Seed `0` is plain FIFO (identical to [`EventQueue::new`]).
    pub fn with_schedule_seed(schedule_seed: u64) -> Self {
        EventQueue {
            ring: (0..RING_CYCLES).map(|_| Vec::new()).collect(),
            ring_events: 0,
            overflow: BinaryHeap::new(),
            next_at: None,
            entered: false,
            seq: 0,
            now: Cycle::ZERO,
            scheduled_total: 0,
            schedule_seed,
        }
    }

    /// The active schedule seed (`0` = FIFO tie-breaking).
    pub fn schedule_seed(&self) -> u64 {
        self.schedule_seed
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    fn slot_of(&self, at: Cycle) -> usize {
        (at.as_u64() & (RING_CYCLES - 1)) as usize
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`EventQueue::now`].
    pub fn schedule(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {} < {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        let key = if self.schedule_seed == 0 {
            seq
        } else {
            crate::rng::splitmix64(self.schedule_seed ^ crate::rng::splitmix64(seq))
        };
        if at.as_u64() - self.now.as_u64() < RING_CYCLES {
            let slot = self.slot_of(at);
            let bucket = &mut self.ring[slot];
            if self.entered && at == self.now {
                // The bucket for `now` is mid-drain and sorted descending
                // by (key, seq); keep it that way so the remaining pops
                // still follow heap order. Under FIFO the new event has
                // the largest key, i.e. it goes to the very front.
                let pos = bucket.partition_point(|s| (s.key, s.seq) > (key, seq));
                bucket.insert(pos, Slot { key, seq, event });
            } else {
                bucket.push(Slot { key, seq, event });
            }
            self.ring_events += 1;
        } else {
            self.overflow.push(Scheduled {
                at,
                key,
                seq,
                event,
            });
        }
        self.next_at = Some(self.next_at.map_or(at, |n| n.min(at)));
    }

    /// Schedules `event` `delay` cycles after the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Prepares the bucket for cycle `at` for draining: migrates any
    /// overflow events that landed on this cycle and sorts the bucket
    /// descending by `(key, seq)` so pops come off the back in heap order.
    fn enter_cycle(&mut self, at: Cycle) {
        let slot = self.slot_of(at);
        let mut migrated = false;
        while self.overflow.peek().is_some_and(|s| s.at == at) {
            let s = self.overflow.pop().expect("peeked");
            self.ring[slot].push(Slot {
                key: s.key,
                seq: s.seq,
                event: s.event,
            });
            self.ring_events += 1;
            migrated = true;
        }
        let bucket = &mut self.ring[slot];
        if self.schedule_seed != 0 || migrated {
            bucket.sort_unstable_by_key(|s| std::cmp::Reverse((s.key, s.seq)));
        } else {
            // FIFO appends arrive in ascending (key == seq) order already;
            // just flip for back-to-front draining.
            bucket.reverse();
        }
        self.entered = true;
    }

    /// Earliest event time strictly after `t`, across ring and overflow.
    fn find_next_after(&self, t: Cycle) -> Option<Cycle> {
        let over = self.overflow.peek().map(|s| s.at);
        if self.ring_events > 0 {
            let tu = t.as_u64();
            for d in 1..RING_CYCLES {
                let at = tu + d;
                if over.is_some_and(|o| o.as_u64() < at) {
                    return over;
                }
                if !self.ring[(at & (RING_CYCLES - 1)) as usize].is_empty() {
                    return Some(Cycle::new(at));
                }
            }
            debug_assert!(false, "ring_events > 0 but no occupied bucket in window");
        }
        over
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty (the clock does not
    /// move).
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let at = self.next_at?;
        if !self.entered || at != self.now {
            self.enter_cycle(at);
        }
        let slot = self.slot_of(at);
        let s = self.ring[slot].pop().expect("bucket holds the next event");
        self.ring_events -= 1;
        self.now = at;
        if self.ring[slot].is_empty() {
            self.next_at = self.find_next_after(at);
        }
        Some((at, s.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.next_at
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_events + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (for diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(30), 3);
        q.schedule(Cycle::new(10), 1);
        q.schedule(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle::new(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop_only() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(7), ());
        assert_eq!(q.now(), Cycle::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycle::new(7));
        // Popping an empty queue leaves the clock alone.
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), Cycle::new(7));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), "first");
        q.pop();
        q.schedule_in(5, "second");
        assert_eq!(q.pop(), Some((Cycle::new(15), "second")));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), ());
        q.pop();
        q.schedule(Cycle::new(9), ());
    }

    #[test]
    fn peek_and_len_track_contents() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycle::new(4), 0);
        q.schedule(Cycle::new(2), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(2)));
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(3), "near");
        q.schedule(Cycle::new(5 * RING_CYCLES), "far");
        q.schedule(Cycle::new(5 * RING_CYCLES), "far2");
        q.schedule(Cycle::new(RING_CYCLES + 1), "mid");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((Cycle::new(3), "near")));
        assert_eq!(q.pop(), Some((Cycle::new(RING_CYCLES + 1), "mid")));
        assert_eq!(q.pop(), Some((Cycle::new(5 * RING_CYCLES), "far")));
        assert_eq!(q.pop(), Some((Cycle::new(5 * RING_CYCLES), "far2")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_and_ring_events_on_the_same_cycle_stay_fifo() {
        let mut q = EventQueue::new();
        let t = Cycle::new(RING_CYCLES + 7);
        q.schedule(t, 0); // overflow: RING_CYCLES + 7 cycles out
        q.schedule(Cycle::new(10), 100);
        q.pop(); // now = 10; t is within the ring window now
        q.schedule(t, 1); // ring
        q.schedule(t, 2); // ring
        assert_eq!(q.pop(), Some((t, 0)));
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn ring_slots_are_reusable_across_windows() {
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        // Same slot (addr mod RING_CYCLES), several windows apart, plus
        // neighbours — exercises slot reuse after draining.
        for w in 0..4u64 {
            for off in [0u64, 1, 3] {
                let at = Cycle::new(w * RING_CYCLES + 100 + off);
                q.schedule(at, (w, off));
                expect.push((at, (w, off)));
            }
        }
        expect.sort_by_key(|&(at, _)| at);
        for e in expect {
            assert_eq!(q.pop(), Some(e));
        }
        assert_eq!(q.pop(), None);
    }

    /// Drains a queue seeded with `seed` after scheduling `n` events on the
    /// same cycle, returning the delivery order.
    fn same_cycle_order(seed: u64, n: u64) -> Vec<u64> {
        let mut q = EventQueue::with_schedule_seed(seed);
        for i in 0..n {
            q.schedule(Cycle::new(5), i);
        }
        std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect()
    }

    #[test]
    fn schedule_seed_zero_is_fifo() {
        assert_eq!(same_cycle_order(0, 64), (0..64).collect::<Vec<u64>>());
        assert_eq!(EventQueue::<u8>::new().schedule_seed(), 0);
    }

    #[test]
    fn schedule_seed_permutes_same_cycle_events() {
        let perturbed = same_cycle_order(0xC0FFEE, 64);
        assert_ne!(perturbed, (0..64).collect::<Vec<u64>>());
        // Still a permutation: every event delivered exactly once.
        let mut sorted = perturbed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn schedule_seed_is_reproducible_and_seed_sensitive() {
        assert_eq!(same_cycle_order(7, 32), same_cycle_order(7, 32));
        assert_ne!(same_cycle_order(7, 32), same_cycle_order(8, 32));
    }

    #[test]
    fn perturbation_never_reorders_across_cycles() {
        let mut q = EventQueue::with_schedule_seed(99);
        for i in 0..100u64 {
            q.schedule(Cycle::new(i / 10), i);
        }
        let mut last = Cycle::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last, "time order violated");
            last = at;
            count += 1;
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn interleaved_schedule_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(1), 'a');
        q.schedule(Cycle::new(5), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.schedule(Cycle::new(3), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }

    #[test]
    fn exactly_ring_cycles_ahead_takes_the_overflow_path() {
        // The overflow boundary: `at - now == RING_CYCLES` must spill to the
        // heap — in the ring it would share slot_of(now) with cycle-`now`
        // events and corrupt pop order.
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(0), "now");
        q.schedule(Cycle::new(RING_CYCLES), "boundary"); // same slot as 0
        q.schedule(Cycle::new(RING_CYCLES - 1), "last-in-ring");
        assert_eq!(q.pop(), Some((Cycle::new(0), "now")));
        assert_eq!(q.pop(), Some((Cycle::new(RING_CYCLES - 1), "last-in-ring")));
        assert_eq!(q.pop(), Some((Cycle::new(RING_CYCLES), "boundary")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn boundary_event_migrates_once_now_advances() {
        // An event exactly RING_CYCLES ahead spills to overflow; after the
        // clock advances it is within the ring window and must interleave
        // correctly with ring-resident events on the same cycle.
        let mut q = EventQueue::new();
        let t = Cycle::new(RING_CYCLES);
        q.schedule(t, 0); // overflow (exactly RING_CYCLES ahead of now=0)
        q.schedule(Cycle::new(1), 100);
        assert_eq!(q.pop(), Some((Cycle::new(1), 100))); // now = 1
        q.schedule(t, 1); // now a ring event (RING_CYCLES - 1 ahead)
        q.schedule(t, 2);
        // FIFO: the overflow event was scheduled first.
        assert_eq!(q.pop(), Some((t, 0)));
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
        assert_eq!(q.pop(), None);
    }

    /// Reference key for seeded tie-breaking, mirroring `schedule`.
    fn key_for(seed: u64, seq: u64) -> u64 {
        if seed == 0 {
            seq
        } else {
            crate::rng::splitmix64(seed ^ crate::rng::splitmix64(seq))
        }
    }

    #[test]
    fn overflow_migration_under_nonzero_seed_follows_key_order() {
        // Events landing on one far cycle via both paths (overflow spill,
        // then ring once `now` advanced) must drain in (key, seq) order
        // under a nonzero schedule seed, exactly like the old BinaryHeap.
        let seed = 0xDECAF;
        let mut q = EventQueue::with_schedule_seed(seed);
        let t = Cycle::new(RING_CYCLES + 5);
        q.schedule(t, 0u64); // seq 0: overflow
        q.schedule(t, 1); // seq 1: overflow
        q.schedule(Cycle::new(10), 99); // seq 2
        q.pop(); // now = 10; t is ring-resident from here on
        q.schedule(t, 3); // seq 3: ring
        q.schedule(t, 4); // seq 4: ring
        let mut expect: Vec<(u64, u64)> = [(0u64, 0u64), (1, 1), (3, 3), (4, 4)]
            .iter()
            .map(|&(seq, id)| (key_for(seed, seq), id))
            .collect();
        expect.sort_unstable();
        let got: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let want: Vec<u64> = expect.into_iter().map(|(_, id)| id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn mid_drain_same_cycle_inserts_under_seed_follow_key_order() {
        // Schedule-at-`now` while the current bucket is mid-drain, under a
        // nonzero seed: the remaining pops must deliver the minimum
        // (key, seq) first, counting the late insert.
        let seed = 0xBEEF;
        let mut q = EventQueue::with_schedule_seed(seed);
        for i in 0..8u64 {
            q.schedule(Cycle::new(5), i); // seqs 0..8
        }
        let first = q.pop().unwrap().1; // enters cycle 5, drains one
                                        // Late arrivals on the mid-drain cycle: seqs 8 and 9.
        q.schedule(Cycle::new(5), 8);
        q.schedule(Cycle::new(5), 9);
        let mut remaining: Vec<(u64, u64)> = (0..10u64)
            .filter(|&i| i != first)
            .map(|i| (key_for(seed, i), i))
            .collect();
        remaining.sort_unstable();
        let got: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let want: Vec<u64> = remaining.into_iter().map(|(_, id)| id).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn mid_drain_same_cycle_inserts_keep_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(5), 0);
        q.schedule(Cycle::new(5), 1);
        assert_eq!(q.pop(), Some((Cycle::new(5), 0)));
        // Inserted while cycle 5 is mid-drain: delivered after 1 (FIFO).
        q.schedule(Cycle::new(5), 2);
        q.schedule(Cycle::new(6), 3);
        assert_eq!(q.pop(), Some((Cycle::new(5), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(5), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(6), 3)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping always yields events in (time, insertion) order, no
        /// matter how schedules and pops interleave.
        #[test]
        fn pops_are_globally_ordered(delays in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, d) in delays.iter().enumerate() {
                q.schedule_in(*d, i);
            }
            let mut last: Option<(Cycle, usize)> = None;
            let mut seen = 0;
            while let Some((at, id)) = q.pop() {
                if let Some((lt, lid)) = last {
                    prop_assert!(at > lt || (at == lt && id > lid),
                        "order violated: ({lt},{lid}) then ({at},{id})");
                }
                last = Some((at, id));
                seen += 1;
            }
            prop_assert_eq!(seen, delays.len());
        }

        /// Interleaved schedule/pop keeps the clock monotone and never
        /// loses an event.
        #[test]
        fn interleaved_operations_preserve_counts(
            script in proptest::collection::vec((0u64..100, any::<bool>()), 1..200),
        ) {
            let mut q = EventQueue::new();
            let mut scheduled = 0u64;
            let mut popped = 0u64;
            let mut clock = Cycle::ZERO;
            for (delay, do_pop) in script {
                if do_pop {
                    if let Some((at, _)) = q.pop() {
                        prop_assert!(at >= clock);
                        clock = at;
                        popped += 1;
                    }
                } else {
                    q.schedule_in(delay, scheduled);
                    scheduled += 1;
                }
            }
            while q.pop().is_some() {
                popped += 1;
            }
            prop_assert_eq!(popped, scheduled);
            prop_assert_eq!(q.scheduled_total(), scheduled);
        }

        /// The calendar queue pops the exact order a reference binary heap
        /// over `(at, key, seq)` would, under FIFO and seeded tie-breaking,
        /// including delays past the ring window.
        #[test]
        fn matches_reference_heap_order(
            seed in any::<u64>().prop_map(|s| if s % 2 == 0 { 0 } else { s }),
            script in proptest::collection::vec(
                (0u64..(2 * RING_CYCLES), 0u8..4), 1..300),
        ) {
            let mut q = EventQueue::with_schedule_seed(seed);
            let mut reference: Vec<(Cycle, u64, u64, usize)> = Vec::new();
            let mut next_id = 0usize;
            let mut seq = 0u64;
            let mut clock = Cycle::ZERO;
            let mut popped: Vec<usize> = Vec::new();
            let mut expected: Vec<usize> = Vec::new();
            for (delay, op) in script {
                if op == 0 && !reference.is_empty() {
                    // Reference pop: minimum (at, key, seq).
                    let i = (0..reference.len()).min_by_key(|&i| {
                        let (at, key, s, _) = reference[i];
                        (at, key, s)
                    }).unwrap();
                    let (at, _, _, id) = reference.remove(i);
                    expected.push(id);
                    clock = at;
                    let got = q.pop().unwrap();
                    popped.push(got.1);
                    prop_assert_eq!(got.0, at);
                } else {
                    let at = clock + delay;
                    let key = if seed == 0 {
                        seq
                    } else {
                        crate::rng::splitmix64(seed ^ crate::rng::splitmix64(seq))
                    };
                    reference.push((at, key, seq, next_id));
                    q.schedule(at, next_id);
                    seq += 1;
                    next_id += 1;
                }
            }
            while let Some((_, id)) = q.pop() {
                popped.push(id);
            }
            while !reference.is_empty() {
                let i = (0..reference.len()).min_by_key(|&i| {
                    let (at, key, s, _) = reference[i];
                    (at, key, s)
                }).unwrap();
                expected.push(reference.remove(i).3);
            }
            prop_assert_eq!(popped, expected);
        }

        /// Like `matches_reference_heap_order`, but with delays drawn from
        /// the overflow-boundary neighbourhood (0, ring edge ± 1, exactly
        /// `RING_CYCLES`, multiples beyond) so the ring/overflow handoff and
        /// schedule-at-`now` mid-drain paths are hit on almost every case,
        /// under FIFO and seeded tie-breaking alike.
        #[test]
        fn boundary_delays_match_reference_heap_order(
            seed in proptest::sample::select(vec![0u64, 7, 0xC0FFEE, 0xDEAD_BEEF]),
            script in proptest::collection::vec(
                (proptest::sample::select(vec![
                    0u64, 1, 2,
                    RING_CYCLES - 1, RING_CYCLES, RING_CYCLES + 1,
                    2 * RING_CYCLES, 2 * RING_CYCLES + 1, 3 * RING_CYCLES,
                ]), 0u8..4), 1..300),
        ) {
            let mut q = EventQueue::with_schedule_seed(seed);
            let mut reference: Vec<(Cycle, u64, u64, usize)> = Vec::new();
            let mut next_id = 0usize;
            let mut seq = 0u64;
            let mut clock = Cycle::ZERO;
            let mut popped: Vec<usize> = Vec::new();
            let mut expected: Vec<usize> = Vec::new();
            for (delay, op) in script {
                if op == 0 && !reference.is_empty() {
                    let i = (0..reference.len()).min_by_key(|&i| {
                        let (at, key, s, _) = reference[i];
                        (at, key, s)
                    }).unwrap();
                    let (at, _, _, id) = reference.remove(i);
                    expected.push(id);
                    clock = at;
                    let got = q.pop().unwrap();
                    popped.push(got.1);
                    prop_assert_eq!(got.0, at);
                } else {
                    let at = clock + delay;
                    let key = if seed == 0 {
                        seq
                    } else {
                        crate::rng::splitmix64(seed ^ crate::rng::splitmix64(seq))
                    };
                    reference.push((at, key, seq, next_id));
                    q.schedule(at, next_id);
                    seq += 1;
                    next_id += 1;
                }
            }
            while let Some((_, id)) = q.pop() {
                popped.push(id);
            }
            while !reference.is_empty() {
                let i = (0..reference.len()).min_by_key(|&i| {
                    let (at, key, s, _) = reference[i];
                    (at, key, s)
                }).unwrap();
                expected.push(reference.remove(i).3);
            }
            prop_assert_eq!(popped, expected);
        }
    }
}
