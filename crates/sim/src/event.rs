//! Time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A deterministic, time-ordered event queue.
///
/// Events scheduled for the same cycle are delivered in the order they were
/// scheduled (FIFO tie-breaking), which keeps simulations reproducible.
///
/// The queue tracks the current simulated time: [`EventQueue::pop`] advances
/// [`EventQueue::now`] to the popped event's timestamp. Scheduling an event in
/// the past is a logic error and panics.
///
/// # Schedule perturbation
///
/// [`EventQueue::with_schedule_seed`] replaces FIFO tie-breaking with a
/// seeded pseudo-random permutation of same-cycle events: each scheduled
/// event gets a tie-break key mixed from `(schedule_seed, seq)`, so events
/// landing on the same cycle can be delivered in any order — but the order
/// is a pure function of the schedule seed, so every run is exactly
/// reproducible. Seed `0` is the identity permutation (plain FIFO), which
/// keeps all pre-perturbation expected outputs unchanged. Time order across
/// cycles is never affected.
///
/// # Example
///
/// ```
/// use ftdircmp_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule_in(3, 'b');
/// q.schedule_in(3, 'c'); // same time: FIFO order preserved
/// q.schedule_in(1, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: Cycle,
    scheduled_total: u64,
    schedule_seed: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    at: Cycle,
    /// Tie-break key: equals `seq` under FIFO, a seeded hash of `seq` under
    /// schedule perturbation.
    key: u64,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event
// (and, within a cycle, the lowest tie-break key) first. `seq` is unique and
// breaks key collisions, keeping the order total in every case.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero with FIFO tie-breaking.
    pub fn new() -> Self {
        EventQueue::with_schedule_seed(0)
    }

    /// Creates an empty queue whose same-cycle tie-breaking is a seeded
    /// permutation. Seed `0` is plain FIFO (identical to [`EventQueue::new`]).
    pub fn with_schedule_seed(schedule_seed: u64) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Cycle::ZERO,
            scheduled_total: 0,
            schedule_seed,
        }
    }

    /// The active schedule seed (`0` = FIFO tie-breaking).
    pub fn schedule_seed(&self) -> u64 {
        self.schedule_seed
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`EventQueue::now`].
    pub fn schedule(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {} < {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        let key = if self.schedule_seed == 0 {
            seq
        } else {
            crate::rng::splitmix64(self.schedule_seed ^ crate::rng::splitmix64(seq))
        };
        self.heap.push(Scheduled {
            at,
            key,
            seq,
            event,
        });
    }

    /// Schedules `event` `delay` cycles after the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty (the clock does not
    /// move).
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(30), 3);
        q.schedule(Cycle::new(10), 1);
        q.schedule(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle::new(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop_only() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(7), ());
        assert_eq!(q.now(), Cycle::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycle::new(7));
        // Popping an empty queue leaves the clock alone.
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), Cycle::new(7));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), "first");
        q.pop();
        q.schedule_in(5, "second");
        assert_eq!(q.pop(), Some((Cycle::new(15), "second")));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), ());
        q.pop();
        q.schedule(Cycle::new(9), ());
    }

    #[test]
    fn peek_and_len_track_contents() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycle::new(4), 0);
        q.schedule(Cycle::new(2), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(2)));
        assert_eq!(q.scheduled_total(), 2);
    }

    /// Drains a queue seeded with `seed` after scheduling `n` events on the
    /// same cycle, returning the delivery order.
    fn same_cycle_order(seed: u64, n: u64) -> Vec<u64> {
        let mut q = EventQueue::with_schedule_seed(seed);
        for i in 0..n {
            q.schedule(Cycle::new(5), i);
        }
        std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect()
    }

    #[test]
    fn schedule_seed_zero_is_fifo() {
        assert_eq!(same_cycle_order(0, 64), (0..64).collect::<Vec<u64>>());
        assert_eq!(EventQueue::<u8>::new().schedule_seed(), 0);
    }

    #[test]
    fn schedule_seed_permutes_same_cycle_events() {
        let perturbed = same_cycle_order(0xC0FFEE, 64);
        assert_ne!(perturbed, (0..64).collect::<Vec<u64>>());
        // Still a permutation: every event delivered exactly once.
        let mut sorted = perturbed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn schedule_seed_is_reproducible_and_seed_sensitive() {
        assert_eq!(same_cycle_order(7, 32), same_cycle_order(7, 32));
        assert_ne!(same_cycle_order(7, 32), same_cycle_order(8, 32));
    }

    #[test]
    fn perturbation_never_reorders_across_cycles() {
        let mut q = EventQueue::with_schedule_seed(99);
        for i in 0..100u64 {
            q.schedule(Cycle::new(i / 10), i);
        }
        let mut last = Cycle::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at >= last, "time order violated");
            last = at;
            count += 1;
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn interleaved_schedule_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(1), 'a');
        q.schedule(Cycle::new(5), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.schedule(Cycle::new(3), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping always yields events in (time, insertion) order, no
        /// matter how schedules and pops interleave.
        #[test]
        fn pops_are_globally_ordered(delays in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, d) in delays.iter().enumerate() {
                q.schedule_in(*d, i);
            }
            let mut last: Option<(Cycle, usize)> = None;
            let mut seen = 0;
            while let Some((at, id)) = q.pop() {
                if let Some((lt, lid)) = last {
                    prop_assert!(at > lt || (at == lt && id > lid),
                        "order violated: ({lt},{lid}) then ({at},{id})");
                }
                last = Some((at, id));
                seen += 1;
            }
            prop_assert_eq!(seen, delays.len());
        }

        /// Interleaved schedule/pop keeps the clock monotone and never
        /// loses an event.
        #[test]
        fn interleaved_operations_preserve_counts(
            script in proptest::collection::vec((0u64..100, any::<bool>()), 1..200),
        ) {
            let mut q = EventQueue::new();
            let mut scheduled = 0u64;
            let mut popped = 0u64;
            let mut clock = Cycle::ZERO;
            for (delay, do_pop) in script {
                if do_pop {
                    if let Some((at, _)) = q.pop() {
                        prop_assert!(at >= clock);
                        clock = at;
                        popped += 1;
                    }
                } else {
                    q.schedule_in(delay, scheduled);
                    scheduled += 1;
                }
            }
            while q.pop().is_some() {
                popped += 1;
            }
            prop_assert_eq!(popped, scheduled);
            prop_assert_eq!(q.scheduled_total(), scheduled);
        }
    }
}
