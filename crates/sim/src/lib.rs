//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the minimal substrate on which the FtDirCMP system
//! simulator is built:
//!
//! * [`Cycle`] — a newtype for simulated time measured in processor cycles.
//! * [`EventQueue`] — a time-ordered, FIFO-stable priority queue of events.
//! * [`DetRng`] — a deterministic, fork-able random number generator so that
//!   every simulation run is exactly reproducible from a single seed.
//! * [`FxHashMap`] / [`FxHashSet`] — hash containers with a fast,
//!   deterministic in-tree hasher for simulator hot paths.
//!
//! # Example
//!
//! ```
//! use ftdircmp_sim::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.schedule(Cycle::new(10), "ten");
//! q.schedule(Cycle::new(5), "five");
//! let (t, e) = q.pop().expect("event");
//! assert_eq!((t, e), (Cycle::new(5), "five"));
//! assert_eq!(q.now(), Cycle::new(5));
//! ```

mod event;
mod fxhash;
mod rng;
mod time;

pub use event::EventQueue;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::{splitmix64, DetRng};
pub use time::Cycle;
