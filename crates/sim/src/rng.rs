//! Deterministic random number generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random number generator for reproducible simulations.
///
/// Every stochastic component of the simulator (fault injection, workload
/// generation, initial serial numbers) draws from a `DetRng` derived from the
/// run's master seed, so a run is exactly reproducible from
/// `(seed, configuration)` alone.
///
/// Independent streams are created with [`DetRng::fork`], which mixes a stream
/// label into the seed. Forked streams are statistically independent and —
/// more importantly here — *isolated*: drawing more numbers in one component
/// does not perturb another component's sequence.
///
/// # Example
///
/// ```
/// use ftdircmp_sim::DetRng;
///
/// let mut a = DetRng::from_seed(42).fork("faults");
/// let mut b = DetRng::from_seed(42).fork("faults");
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed + label => same stream
///
/// let mut c = DetRng::from_seed(42).fork("workload");
/// assert_ne!(DetRng::from_seed(42).fork("faults").next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
    seed: u64,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(splitmix64(seed)),
            seed,
        }
    }

    /// Derives an independent stream labelled `label`.
    ///
    /// The same `(seed, label)` pair always yields the same stream.
    pub fn fork(&self, label: &str) -> DetRng {
        let mut h = self.seed;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        DetRng::from_seed(h)
    }

    /// Derives an independent stream from a numeric label (e.g. a core index).
    pub fn fork_indexed(&self, label: &str, index: u64) -> DetRng {
        let forked = self.fork(label);
        DetRng::from_seed(splitmix64(
            forked.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        let i = self.below(items.len() as u64) as usize;
        &items[i]
    }

    /// Geometric-ish draw: number of successes before a failure with success
    /// probability `p`, capped at `cap`. Used for fault-burst lengths.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        let mut n = 0;
        while n < cap && self.chance(p) {
            n += 1;
        }
        n
    }
}

/// SplitMix64 step; mixes seeds so that nearby seeds yield unrelated streams.
/// Also used by `EventQueue` to derive schedule-perturbation tie-break keys,
/// and by the NoC fault-domain layer to derive stateless per-link decision
/// streams keyed by `(domain seed, link, per-link message count)`.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::from_seed(7);
        let mut b = DetRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::from_seed(1);
        let mut b = DetRng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn forks_are_isolated() {
        let root = DetRng::from_seed(99);
        let mut a1 = root.fork("a");
        // Drawing from an unrelated fork must not perturb `a`'s stream.
        let mut b = root.fork("b");
        let _ = b.next_u64();
        let mut a2 = root.fork("a");
        for _ in 0..16 {
            assert_eq!(a1.next_u64(), a2.next_u64());
        }
    }

    #[test]
    fn fork_indexed_distinguishes_indices() {
        let root = DetRng::from_seed(5);
        let x = root.fork_indexed("core", 0).next_u64();
        let y = root.fork_indexed("core", 1).next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn chance_extremes_are_deterministic() {
        let mut r = DetRng::from_seed(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_probability_roughly_respected() {
        let mut r = DetRng::from_seed(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn geometric_capped() {
        let mut r = DetRng::from_seed(13);
        for _ in 0..100 {
            assert!(r.geometric(0.99, 5) <= 5);
        }
        assert_eq!(r.geometric(0.0, 5), 0);
    }

    #[test]
    fn pick_covers_all_elements_eventually() {
        let mut r = DetRng::from_seed(17);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        DetRng::from_seed(0).below(0);
    }
}
