//! A small, fast, **deterministic** hasher for simulator hot paths.
//!
//! `std::collections::HashMap` defaults to SipHash behind a per-map random
//! key. That costs two ways in the simulator's inner loops: SipHash is slow
//! for the tiny keys we hash (line addresses, node ids), and the random key
//! makes iteration order differ between two maps in the same process —
//! harmless for correctness here (nothing iterates map order on a decision
//! path) but hostile to debugging reproducibility.
//!
//! [`FxHasher`] is the multiply-rotate hash popularized by Firefox and
//! rustc (`rustc-hash`), implemented in-tree because this build environment
//! cannot fetch crates. It is not DoS-resistant, which is irrelevant for a
//! simulator hashing its own deterministic addresses.
//!
//! # Example
//!
//! ```
//! use ftdircmp_sim::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(0x40, "line");
//! assert_eq!(m.get(&0x40), Some(&"line"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`] (drop-in for per-line protocol state).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Zero-sized `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-hash/FxHash word-at-a-time multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&0xdead_beefu64), hash_of(&0xdead_beefu64));
        assert_eq!(hash_of(&"label"), hash_of(&"label"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let a = hash_of(&0x40u64);
        let b = hash_of(&0x80u64);
        assert_ne!(a, b);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m: FxHashMap<u32, ()> = FxHashMap::default();
            for i in 0..100 {
                m.insert(i * 7, ());
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn partial_tail_bytes_hash_differently() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 4][..]));
    }
}
