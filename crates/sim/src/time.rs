//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in processor clock cycles.
///
/// `Cycle` is an absolute timestamp; durations are plain `u64` cycle counts.
/// The distinction keeps timestamp/duration mix-ups out of the protocol code:
/// `Cycle + u64 = Cycle` and `Cycle - Cycle = u64`, but `Cycle + Cycle` does
/// not compile.
///
/// # Example
///
/// ```
/// use ftdircmp_sim::Cycle;
///
/// let start = Cycle::new(100);
/// let deadline = start + 50;
/// assert_eq!(deadline - start, 50);
/// assert!(deadline > start);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a timestamp at `cycles` cycles after time zero.
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the later of two timestamps.
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the duration since `earlier`, or zero if `earlier` is in the
    /// future.
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Duration between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self} - {rhs}");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c", self.0)
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle({})", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(value: u64) -> Self {
        Cycle(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = Cycle::new(7);
        assert_eq!((t + 3) - t, 3);
        assert_eq!(Cycle::ZERO.as_u64(), 0);
    }

    #[test]
    fn ordering_follows_cycle_count() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert_eq!(Cycle::new(5).max(Cycle::new(9)), Cycle::new(9));
        assert_eq!(Cycle::new(9).max(Cycle::new(5)), Cycle::new(9));
    }

    #[test]
    fn saturating_since_never_underflows() {
        assert_eq!(Cycle::new(3).saturating_since(Cycle::new(10)), 0);
        assert_eq!(Cycle::new(10).saturating_since(Cycle::new(3)), 7);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Cycle::new(42).to_string(), "42c");
        assert_eq!(format!("{:?}", Cycle::new(42)), "Cycle(42)");
    }

    #[test]
    fn add_assign_advances() {
        let mut t = Cycle::new(1);
        t += 4;
        assert_eq!(t, Cycle::new(5));
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    #[cfg(debug_assertions)]
    fn negative_duration_panics_in_debug() {
        let _ = Cycle::new(1) - Cycle::new(2);
    }
}
