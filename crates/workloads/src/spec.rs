//! Workload specifications: named parameterizations standing in for the
//! paper's benchmark suite.

use ftdircmp_core::trace::{CoreTrace, TraceOp, Workload};
use ftdircmp_sim::DetRng;

use crate::patterns::{self, PatternState, Regions};

/// One of the classic sharing behaviours of parallel programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingPattern {
    /// Accesses to a per-core private region.
    Private,
    /// Loads from a read-mostly shared region with a hot subset.
    ReadShared,
    /// Writes into an own chunk, reads from the neighbour's (pipelines,
    /// boundary exchanges).
    ProducerConsumer,
    /// Load-then-store on a small set of shared lines (the pattern the
    /// migratory optimization targets, paper §2).
    Migratory,
    /// Lock-style read-modify-write contention on a hot line.
    Lock,
    /// Sequential sweep through a large region (capacity misses).
    Streaming,
}

/// A named synthetic workload: a weighted pattern mix plus sizing knobs.
///
/// # Example
///
/// ```
/// use ftdircmp_workloads::WorkloadSpec;
///
/// let wl = WorkloadSpec::named("radix").unwrap().generate(16, 1);
/// assert_eq!(wl.name, "radix");
/// assert_eq!(wl.traces.len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Display name (the benchmark this trace models).
    pub name: &'static str,
    /// Operations generated per core (pattern bursts may emit several).
    pub ops_per_core: usize,
    /// Weighted pattern mix.
    pub mix: Vec<(SharingPattern, f64)>,
    /// Per-core private region, in lines.
    pub private_lines: u64,
    /// Read-mostly shared region, in lines.
    pub shared_lines: u64,
    /// Producer-consumer chunk per core, in lines.
    pub chunk_lines: u64,
    /// Migratory line set size.
    pub migratory_lines: u64,
    /// Number of contended lock lines.
    pub locks: u64,
    /// Streaming region, in lines.
    pub stream_lines: u64,
    /// Store fraction for private/streaming accesses.
    pub store_fraction: f64,
    /// Mean think time between bursts, cycles (0 disables).
    pub think_mean: u64,
}

impl WorkloadSpec {
    /// Looks up a spec from [`suite`] by name.
    pub fn named(name: &str) -> Option<WorkloadSpec> {
        suite().into_iter().find(|s| s.name == name)
    }

    /// Parses a workload request from a campaign submission:
    /// `"name"` or `"name:key=value,..."` with sizing overrides.
    ///
    /// Supported overrides (all unsigned integers):
    /// * `ops` — operations generated per core ([`WorkloadSpec::ops_per_core`]),
    ///   the knob smoke campaigns use to stay tiny;
    /// * `think` — mean think time in cycles ([`WorkloadSpec::think_mean`]).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the unknown benchmark (and
    /// listing the suite) or the malformed override.
    pub fn parse(request: &str) -> Result<WorkloadSpec, String> {
        let (name, overrides) = match request.split_once(':') {
            Some((n, o)) => (n.trim(), Some(o)),
            None => (request.trim(), None),
        };
        let mut spec = WorkloadSpec::named(name).ok_or_else(|| {
            format!(
                "unknown benchmark {name:?} (suite: {})",
                suite_names().join(", ")
            )
        })?;
        for kv in overrides.into_iter().flat_map(|o| o.split(',')) {
            let kv = kv.trim();
            if kv.is_empty() {
                continue;
            }
            let (key, value) = kv
                .split_once('=')
                .ok_or_else(|| format!("malformed override {kv:?} (expected key=value)"))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("override {key:?}: bad integer {value:?}"))?;
            match key.trim() {
                "ops" => {
                    if n == 0 {
                        return Err("override \"ops\": must be >= 1".to_string());
                    }
                    spec.ops_per_core = n as usize;
                }
                "think" => spec.think_mean = n,
                other => {
                    return Err(format!(
                        "unknown override {other:?} (supported: ops, think)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// Generates per-core traces for `cores` cores from `seed`.
    pub fn generate(&self, cores: u8, seed: u64) -> Workload {
        let regions = Regions { line_bytes: 64 };
        let root = DetRng::from_seed(seed ^ 0xF7D1_0000).fork(self.name);
        let total_weight: f64 = self.mix.iter().map(|(_, w)| w).sum();
        let mut traces = Vec::with_capacity(usize::from(cores));
        for core in 0..cores {
            let mut rng = root.fork_indexed("core", u64::from(core));
            let mut st = PatternState {
                core,
                cores,
                stream_cursor: rng.below(self.stream_lines.max(1)),
            };
            let mut ops: Vec<TraceOp> = Vec::with_capacity(self.ops_per_core * 2);
            while ops.len() < self.ops_per_core {
                let mut pick = rng.unit_f64() * total_weight;
                let mut chosen = self.mix[0].0;
                for (p, w) in &self.mix {
                    if pick < *w {
                        chosen = *p;
                        break;
                    }
                    pick -= w;
                }
                match chosen {
                    SharingPattern::Private => patterns::private(
                        &regions,
                        &st,
                        self.private_lines,
                        self.store_fraction,
                        &mut rng,
                        &mut ops,
                    ),
                    SharingPattern::ReadShared => {
                        patterns::read_shared(&regions, self.shared_lines, &mut rng, &mut ops);
                    }
                    SharingPattern::ProducerConsumer => patterns::producer_consumer(
                        &regions,
                        &st,
                        self.chunk_lines,
                        &mut rng,
                        &mut ops,
                    ),
                    SharingPattern::Migratory => {
                        patterns::migratory(&regions, self.migratory_lines, &mut rng, &mut ops);
                    }
                    SharingPattern::Lock => {
                        patterns::lock(&regions, self.locks, &mut rng, &mut ops);
                    }
                    SharingPattern::Streaming => patterns::streaming(
                        &regions,
                        &mut st,
                        self.stream_lines,
                        self.store_fraction,
                        &mut rng,
                        &mut ops,
                    ),
                }
                if self.think_mean > 0 && rng.chance(0.3) {
                    ops.push(TraceOp::Think(1 + rng.below(self.think_mean * 2)));
                }
            }
            traces.push(CoreTrace::new(ops));
        }
        Workload::new(self.name, traces)
    }
}

fn base(name: &'static str) -> WorkloadSpec {
    WorkloadSpec {
        name,
        ops_per_core: 600,
        mix: vec![(SharingPattern::Private, 1.0)],
        private_lines: 96,
        shared_lines: 256,
        chunk_lines: 32,
        migratory_lines: 8,
        locks: 2,
        stream_lines: 4096,
        store_fraction: 0.3,
        think_mean: 20,
    }
}

/// Names of every benchmark in [`suite`], in suite order.
pub fn suite_names() -> Vec<&'static str> {
    suite().iter().map(|s| s.name).collect()
}

/// The benchmark suite: named synthetic stand-ins for the parallel
/// applications of the paper's evaluation, each emphasising a different
/// coherence event mix (see DESIGN.md §4).
pub fn suite() -> Vec<WorkloadSpec> {
    vec![
        // Hierarchical n-body: migratory body updates + read-shared tree.
        WorkloadSpec {
            mix: vec![
                (SharingPattern::ReadShared, 0.35),
                (SharingPattern::Migratory, 0.25),
                (SharingPattern::Private, 0.35),
                (SharingPattern::Lock, 0.05),
            ],
            ..base("barnes")
        },
        // FFT: streaming butterflies + all-to-all transpose.
        WorkloadSpec {
            mix: vec![
                (SharingPattern::Streaming, 0.45),
                (SharingPattern::ProducerConsumer, 0.3),
                (SharingPattern::Private, 0.25),
            ],
            store_fraction: 0.4,
            ..base("fft")
        },
        // Blocked LU: streaming over blocks + read-shared pivot row.
        WorkloadSpec {
            mix: vec![
                (SharingPattern::Streaming, 0.4),
                (SharingPattern::ReadShared, 0.35),
                (SharingPattern::Private, 0.25),
            ],
            ..base("lu")
        },
        // Ocean: grid relaxation, neighbour boundary exchange.
        WorkloadSpec {
            mix: vec![
                (SharingPattern::Streaming, 0.35),
                (SharingPattern::ProducerConsumer, 0.45),
                (SharingPattern::Private, 0.2),
            ],
            store_fraction: 0.45,
            ..base("ocean")
        },
        // Radix sort: scatter-heavy streaming with high store fraction.
        WorkloadSpec {
            mix: vec![
                (SharingPattern::Streaming, 0.6),
                (SharingPattern::Private, 0.3),
                (SharingPattern::Lock, 0.1),
            ],
            store_fraction: 0.55,
            ..base("radix")
        },
        // Raytrace: read-mostly scene + work-queue locks + private stacks.
        WorkloadSpec {
            mix: vec![
                (SharingPattern::ReadShared, 0.5),
                (SharingPattern::Private, 0.35),
                (SharingPattern::Lock, 0.15),
            ],
            store_fraction: 0.15,
            locks: 4,
            ..base("raytrace")
        },
        // Water (n-squared): migratory molecule records.
        WorkloadSpec {
            mix: vec![
                (SharingPattern::Migratory, 0.4),
                (SharingPattern::ReadShared, 0.25),
                (SharingPattern::Private, 0.35),
            ],
            migratory_lines: 16,
            ..base("water-nsq")
        },
        // Water (spatial): like water-nsq with less contention.
        WorkloadSpec {
            mix: vec![
                (SharingPattern::Migratory, 0.2),
                (SharingPattern::ReadShared, 0.25),
                (SharingPattern::Private, 0.55),
            ],
            migratory_lines: 32,
            ..base("water-sp")
        },
        // Tomcatv: vectorizable mesh code, mostly private streaming.
        WorkloadSpec {
            mix: vec![
                (SharingPattern::Streaming, 0.55),
                (SharingPattern::Private, 0.4),
                (SharingPattern::ReadShared, 0.05),
            ],
            store_fraction: 0.35,
            ..base("tomcatv")
        },
        // Unstructured: irregular mesh, mixed sharing with locks.
        WorkloadSpec {
            mix: vec![
                (SharingPattern::ReadShared, 0.3),
                (SharingPattern::Migratory, 0.2),
                (SharingPattern::ProducerConsumer, 0.2),
                (SharingPattern::Private, 0.2),
                (SharingPattern::Lock, 0.1),
            ],
            ..base("unstructured")
        },
        // Web-server stand-in: large read-mostly document set, per-request
        // private buffers, contended accept/stat locks.
        WorkloadSpec {
            mix: vec![
                (SharingPattern::ReadShared, 0.45),
                (SharingPattern::Private, 0.3),
                (SharingPattern::Lock, 0.15),
                (SharingPattern::Migratory, 0.1),
            ],
            shared_lines: 1024,
            locks: 6,
            store_fraction: 0.2,
            think_mean: 60,
            ..base("apache")
        },
        // Transaction-server stand-in: migratory object headers, shared
        // heap, allocation locks, high store fraction.
        WorkloadSpec {
            mix: vec![
                (SharingPattern::Migratory, 0.3),
                (SharingPattern::ReadShared, 0.2),
                (SharingPattern::Private, 0.3),
                (SharingPattern::ProducerConsumer, 0.1),
                (SharingPattern::Lock, 0.1),
            ],
            migratory_lines: 24,
            locks: 8,
            store_fraction: 0.4,
            ..base("sjbb")
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_distinct_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 12);
        for (i, a) in s.iter().enumerate() {
            for b in &s[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn named_lookup_works() {
        assert!(WorkloadSpec::named("fft").is_some());
        assert!(WorkloadSpec::named("barnes").is_some());
        assert!(WorkloadSpec::named("nonexistent").is_none());
    }

    #[test]
    fn parse_accepts_bare_names_and_overrides() {
        assert_eq!(WorkloadSpec::parse("fft").unwrap(), suite()[1]);
        let tiny = WorkloadSpec::parse("barnes:ops=40").unwrap();
        assert_eq!(tiny.ops_per_core, 40);
        assert_eq!(tiny.name, "barnes");
        let both = WorkloadSpec::parse(" ocean : ops=25 , think=0 ").unwrap();
        assert_eq!(both.ops_per_core, 25);
        assert_eq!(both.think_mean, 0);
    }

    #[test]
    fn parse_rejects_bad_requests_descriptively() {
        let e = WorkloadSpec::parse("nonexistent").unwrap_err();
        assert!(
            e.contains("unknown benchmark") && e.contains("water-sp"),
            "{e}"
        );
        let e = WorkloadSpec::parse("fft:ops").unwrap_err();
        assert!(e.contains("key=value"), "{e}");
        let e = WorkloadSpec::parse("fft:ops=zero").unwrap_err();
        assert!(e.contains("bad integer"), "{e}");
        let e = WorkloadSpec::parse("fft:ops=0").unwrap_err();
        assert!(e.contains(">= 1"), "{e}");
        let e = WorkloadSpec::parse("fft:sides=9").unwrap_err();
        assert!(e.contains("unknown override"), "{e}");
    }

    #[test]
    fn suite_names_match_suite() {
        assert_eq!(
            suite_names(),
            suite().iter().map(|s| s.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::named("ocean").unwrap();
        let a = spec.generate(16, 7);
        let b = spec.generate(16, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = WorkloadSpec::named("ocean").unwrap();
        assert_ne!(spec.generate(16, 1), spec.generate(16, 2));
    }

    #[test]
    fn generates_requested_core_count_and_ops() {
        for spec in suite() {
            let wl = spec.generate(16, 3);
            assert_eq!(wl.traces.len(), 16, "{}", spec.name);
            for t in &wl.traces {
                assert!(t.len() >= spec.ops_per_core, "{}", spec.name);
                assert!(t.mem_ops() > 0, "{}", spec.name);
            }
        }
    }

    #[test]
    fn store_heavy_specs_store_more() {
        let radix = WorkloadSpec::named("radix").unwrap().generate(4, 5);
        let raytrace = WorkloadSpec::named("raytrace").unwrap().generate(4, 5);
        let frac = |wl: &ftdircmp_core::trace::Workload| {
            let (mut st, mut tot) = (0usize, 0usize);
            for t in &wl.traces {
                for op in t.ops() {
                    if op.is_mem() {
                        tot += 1;
                        if matches!(op, ftdircmp_core::trace::TraceOp::Store(_)) {
                            st += 1;
                        }
                    }
                }
            }
            st as f64 / tot as f64
        };
        assert!(frac(&radix) > frac(&raytrace) + 0.1);
    }

    #[test]
    fn migratory_specs_emit_rmw_pairs() {
        let wl = WorkloadSpec::named("water-nsq").unwrap().generate(2, 9);
        let t = &wl.traces[0];
        let mut pairs = 0;
        for w in t.ops().windows(2) {
            if let (TraceOp::Load(a), TraceOp::Store(b)) = (w[0], w[1]) {
                if a == b {
                    pairs += 1;
                }
            }
        }
        assert!(
            pairs > 10,
            "expected migratory load/store pairs, got {pairs}"
        );
    }
}

#[cfg(test)]
mod statistical_tests {
    use super::*;
    use ftdircmp_core::trace::TraceOp;

    fn store_fraction(wl: &ftdircmp_core::trace::Workload) -> f64 {
        let (mut st, mut tot) = (0usize, 0usize);
        for t in &wl.traces {
            for op in t.ops() {
                if op.is_mem() {
                    tot += 1;
                    if matches!(op, TraceOp::Store(_)) {
                        st += 1;
                    }
                }
            }
        }
        st as f64 / tot as f64
    }

    fn fraction_in_region(wl: &ftdircmp_core::trace::Workload, lo: u64, hi: u64) -> f64 {
        let (mut inside, mut tot) = (0usize, 0usize);
        for t in &wl.traces {
            for op in t.ops() {
                if let Some(a) = op.addr() {
                    tot += 1;
                    let line = a.0 / 64;
                    if (lo..hi).contains(&line) {
                        inside += 1;
                    }
                }
            }
        }
        inside as f64 / tot as f64
    }

    #[test]
    fn every_benchmark_is_statistically_plausible() {
        for spec in suite() {
            let wl = spec.generate(16, 77);
            let sf = store_fraction(&wl);
            assert!(
                (0.05..0.75).contains(&sf),
                "{}: store fraction {sf}",
                spec.name
            );
            for t in &wl.traces {
                assert!(
                    t.mem_ops() * 10 >= t.len() * 4,
                    "{}: too few mem ops",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn read_heavy_specs_touch_the_shared_region() {
        // raytrace/apache are read-shared dominated: a large fraction of
        // their references land in the shared region [0x2000, 0x8000).
        for name in ["raytrace", "apache"] {
            let wl = WorkloadSpec::named(name).unwrap().generate(16, 5);
            let f = fraction_in_region(&wl, 0x2000, 0x8000);
            assert!(f > 0.2, "{name}: shared fraction {f}");
        }
        // tomcatv is not.
        let wl = WorkloadSpec::named("tomcatv").unwrap().generate(16, 5);
        assert!(fraction_in_region(&wl, 0x2000, 0x8000) < 0.1);
    }

    #[test]
    fn streaming_specs_cover_wide_footprints() {
        let wl = WorkloadSpec::named("radix").unwrap().generate(16, 5);
        let mut lines = std::collections::HashSet::new();
        for t in &wl.traces {
            for op in t.ops() {
                if let Some(a) = op.addr() {
                    lines.insert(a.0 / 64);
                }
            }
        }
        assert!(lines.len() > 1500, "radix footprint {} lines", lines.len());
    }
}
