//! Synthetic parallel workload generators.
//!
//! The paper evaluates FtDirCMP with full-system simulation of SPLASH-2-class
//! parallel applications. Those binaries (and the Simics/GEMS stack to run
//! them) are not available here, so this crate generates *synthetic traces*
//! that reproduce the property the protocols actually respond to: the
//! **coherence event mix** — miss rates, sharing degree, read/write balance,
//! producer–consumer flows, migratory read-modify-write chains and lock-like
//! contention (see DESIGN.md §4, substitution table).
//!
//! Each named workload is a distinct parameterization of
//! [`WorkloadSpec`]; [`suite`] returns the benchmark set used by the
//! figure-regeneration benches.
//!
//! # Example
//!
//! ```
//! use ftdircmp_workloads::{suite, WorkloadSpec};
//!
//! let spec = WorkloadSpec::named("fft").expect("fft is in the suite");
//! let wl = spec.generate(16, 42);
//! assert_eq!(wl.traces.len(), 16);
//! assert!(wl.total_mem_ops() > 0);
//! assert!(suite().len() >= 8);
//! ```

mod patterns;
mod spec;

pub use spec::{suite, suite_names, SharingPattern, WorkloadSpec};
