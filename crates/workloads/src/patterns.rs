//! Memory-reference pattern generators.
//!
//! Each pattern emits a short burst of trace operations reproducing one of
//! the classic sharing behaviours of parallel programs; a workload is a
//! weighted mix of patterns (see [`crate::WorkloadSpec`]).

use ftdircmp_core::ids::Addr;
use ftdircmp_core::trace::TraceOp;
use ftdircmp_sim::DetRng;

/// Line-granular address regions used by the generators. Regions are
/// disjoint so patterns never interfere by accident.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Regions {
    /// Cache line size in bytes (addresses are `line * line_bytes`).
    pub line_bytes: u64,
}

impl Regions {
    const LOCK_BASE: u64 = 0x80;
    const MIGRATORY_BASE: u64 = 0x100;
    const SHARED_BASE: u64 = 0x2_000;
    const PRODUCER_BASE: u64 = 0x8_000;
    const PRIVATE_BASE: u64 = 0x100_000;
    const STREAM_BASE: u64 = 0x400_000;

    fn addr(&self, line: u64) -> Addr {
        Addr(line * self.line_bytes)
    }

    /// A contended lock line (one of a few).
    pub fn lock_line(&self, lock: u64) -> Addr {
        self.addr(Self::LOCK_BASE + lock)
    }

    /// A migratory read-modify-write line.
    pub fn migratory_line(&self, i: u64) -> Addr {
        self.addr(Self::MIGRATORY_BASE + i)
    }

    /// A line in the read-mostly shared region.
    pub fn shared_line(&self, i: u64) -> Addr {
        self.addr(Self::SHARED_BASE + i)
    }

    /// A line in core `c`'s producer chunk.
    pub fn producer_line(&self, core: u8, chunk_lines: u64, i: u64) -> Addr {
        self.addr(Self::PRODUCER_BASE + u64::from(core) * chunk_lines + i)
    }

    /// A line in core `c`'s private region.
    pub fn private_line(&self, core: u8, region_lines: u64, i: u64) -> Addr {
        self.addr(Self::PRIVATE_BASE + u64::from(core) * region_lines + i)
    }

    /// A line in the streaming region (shared cursor space).
    pub fn stream_line(&self, i: u64) -> Addr {
        self.addr(Self::STREAM_BASE + i)
    }
}

/// Per-core generator state (streaming cursors etc.).
#[derive(Debug, Clone)]
pub(crate) struct PatternState {
    pub core: u8,
    pub cores: u8,
    pub stream_cursor: u64,
}

/// Emits a private-region access.
pub(crate) fn private(
    regions: &Regions,
    st: &PatternState,
    region_lines: u64,
    store_fraction: f64,
    rng: &mut DetRng,
    out: &mut Vec<TraceOp>,
) {
    let line = rng.below(region_lines.max(1));
    let a = regions.private_line(st.core, region_lines, line);
    if rng.chance(store_fraction) {
        out.push(TraceOp::Store(a));
    } else {
        out.push(TraceOp::Load(a));
    }
    // Temporal locality: re-touch the same line a few times, as real code
    // does with stack slots and loop-carried scalars.
    let extra = rng.below(4);
    for _ in 0..extra {
        if rng.chance(store_fraction) {
            out.push(TraceOp::Store(a));
        } else {
            out.push(TraceOp::Load(a));
        }
    }
}

/// Emits a read from the shared read-mostly region, with a hot subset.
pub(crate) fn read_shared(
    regions: &Regions,
    shared_lines: u64,
    rng: &mut DetRng,
    out: &mut Vec<TraceOp>,
) {
    let lines = shared_lines.max(1);
    // 75% of accesses hit the hottest eighth of the region.
    let line = if rng.chance(0.75) {
        rng.below((lines / 8).max(1))
    } else {
        rng.below(lines)
    };
    out.push(TraceOp::Load(regions.shared_line(line)));
}

/// Producer–consumer: write into our chunk, read the neighbour's.
pub(crate) fn producer_consumer(
    regions: &Regions,
    st: &PatternState,
    chunk_lines: u64,
    rng: &mut DetRng,
    out: &mut Vec<TraceOp>,
) {
    let chunk = chunk_lines.max(1);
    let i = rng.below(chunk);
    if rng.chance(0.5) {
        out.push(TraceOp::Store(regions.producer_line(st.core, chunk, i)));
    } else {
        let neighbour = (st.core + 1) % st.cores.max(1);
        out.push(TraceOp::Load(regions.producer_line(neighbour, chunk, i)));
    }
}

/// Migratory read-modify-write: load then store the same shared line, the
/// pattern the directory's migratory optimization accelerates (paper §2).
pub(crate) fn migratory(
    regions: &Regions,
    migratory_lines: u64,
    rng: &mut DetRng,
    out: &mut Vec<TraceOp>,
) {
    let line = rng.below(migratory_lines.max(1));
    let a = regions.migratory_line(line);
    out.push(TraceOp::Load(a));
    out.push(TraceOp::Store(a));
}

/// Lock-like contention: spin-read then write a hot line, then "hold" it.
pub(crate) fn lock(regions: &Regions, locks: u64, rng: &mut DetRng, out: &mut Vec<TraceOp>) {
    let a = regions.lock_line(rng.below(locks.max(1)));
    out.push(TraceOp::Load(a));
    out.push(TraceOp::Store(a));
    out.push(TraceOp::Think(20 + rng.below(60)));
    out.push(TraceOp::Store(a));
}

/// Streaming sweep: sequential lines, mostly loads with occasional stores —
/// generates capacity misses and evictions.
pub(crate) fn streaming(
    regions: &Regions,
    st: &mut PatternState,
    stream_lines: u64,
    store_fraction: f64,
    rng: &mut DetRng,
    out: &mut Vec<TraceOp>,
) {
    let span = stream_lines.max(1);
    // Interleave cores through the region so neighbours share boundary lines.
    let line = (st.stream_cursor * u64::from(st.cores.max(1)) + u64::from(st.core)) % span;
    st.stream_cursor += 1;
    let a = regions.stream_line(line);
    if rng.chance(store_fraction) {
        out.push(TraceOp::Store(a));
    } else {
        out.push(TraceOp::Load(a));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::from_seed(1)
    }

    fn regions() -> Regions {
        Regions { line_bytes: 64 }
    }

    fn state() -> PatternState {
        PatternState {
            core: 2,
            cores: 16,
            stream_cursor: 0,
        }
    }

    #[test]
    fn regions_are_disjoint() {
        let r = regions();
        let private = r.private_line(0, 64, 63).0 / 64;
        let shared = r.shared_line(1023).0 / 64;
        let lockl = r.lock_line(7).0 / 64;
        let mig = r.migratory_line(63).0 / 64;
        let prod = r.producer_line(15, 64, 63).0 / 64;
        let stream = r.stream_line(100_000).0 / 64;
        let mut all = [private, shared, lockl, mig, prod, stream];
        all.sort_unstable();
        for w in all.windows(2) {
            assert_ne!(w[0], w[1], "regions overlap");
        }
    }

    #[test]
    fn private_stays_in_own_region() {
        let r = regions();
        let st = state();
        let mut g = rng();
        let mut out = Vec::new();
        for _ in 0..100 {
            private(&r, &st, 32, 0.5, &mut g, &mut out);
        }
        for op in &out {
            let line = op.addr().unwrap().0 / 64;
            let base = 0x100_000 + 2 * 32;
            assert!((base..base + 32).contains(&line));
        }
    }

    #[test]
    fn migratory_emits_load_store_pairs() {
        let r = regions();
        let mut g = rng();
        let mut out = Vec::new();
        migratory(&r, 8, &mut g, &mut out);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], TraceOp::Load(_)));
        assert!(matches!(out[1], TraceOp::Store(_)));
        assert_eq!(out[0].addr(), out[1].addr());
    }

    #[test]
    fn lock_touches_one_hot_line() {
        let r = regions();
        let mut g = rng();
        let mut out = Vec::new();
        lock(&r, 1, &mut g, &mut out);
        let addrs: Vec<_> = out.iter().filter_map(|o| o.addr()).collect();
        assert!(addrs.iter().all(|a| *a == addrs[0]));
        assert!(out.iter().any(|o| matches!(o, TraceOp::Think(_))));
    }

    #[test]
    fn streaming_advances_cursor() {
        let r = regions();
        let mut st = state();
        let mut g = rng();
        let mut out = Vec::new();
        streaming(&r, &mut st, 1024, 0.2, &mut g, &mut out);
        streaming(&r, &mut st, 1024, 0.2, &mut g, &mut out);
        assert_eq!(st.stream_cursor, 2);
        assert_ne!(out[0].addr(), out[1].addr());
    }

    #[test]
    fn producer_consumer_reads_neighbour_chunk() {
        let r = regions();
        let st = state();
        let mut g = rng();
        let mut stores_own = 0;
        let mut loads_neighbour = 0;
        for _ in 0..200 {
            let mut out = Vec::new();
            producer_consumer(&r, &st, 16, &mut g, &mut out);
            let line = out[0].addr().unwrap().0 / 64 - 0x8_000;
            let chunk = line / 16;
            match out[0] {
                TraceOp::Store(_) => {
                    assert_eq!(chunk, 2);
                    stores_own += 1;
                }
                TraceOp::Load(_) => {
                    assert_eq!(chunk, 3);
                    loads_neighbour += 1;
                }
                TraceOp::Think(_) => unreachable!(),
            }
        }
        assert!(stores_own > 50 && loads_neighbour > 50);
    }
}
