//! Golden tests: the compiled-in tables are clean under every lint, the
//! §5 tables in PROTOCOL.md round-trip through render/parse, and the repo's
//! actual PROTOCOL.md has no drift.

use std::collections::BTreeSet;
use std::path::PathBuf;

use ftdircmp_core::transitions::{table, Controller};
use ftdircmp_lint::{lints, model, parse_event, spec};

fn protocol_md() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../PROTOCOL.md");
    std::fs::read_to_string(path).expect("PROTOCOL.md readable")
}

#[test]
fn static_lints_clean_on_real_tables() {
    for c in Controller::ALL {
        let t = table(c);
        let mut findings = lints::completeness(t);
        findings.extend(lints::resource_pairing(t));
        findings.extend(lints::ft_gating(t));
        assert!(
            findings.is_empty(),
            "{}: {:?}",
            c.name(),
            findings.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }
}

#[test]
fn spec_sections_round_trip() {
    // render -> extract -> parse must reproduce the cell matrix exactly.
    for c in Controller::ALL {
        let t = table(c);
        for section in spec::Section::ALL {
            let rendered = spec::render_section(t, section);
            let body = spec::extract_section(&rendered, section, c)
                .expect("rendered section has both markers");
            let parsed = spec::parse_cells(&body);
            let (_, expected) = spec::section_cells(t, section);
            assert_eq!(parsed, expected, "{} {}", c.name(), section.tag());
        }
    }
}

#[test]
fn protocol_md_has_no_drift() {
    let findings = spec::drift(&protocol_md());
    assert!(
        findings.is_empty(),
        "PROTOCOL.md drifted from the code tables: {:?}",
        findings.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
}

#[test]
fn update_spec_is_idempotent() {
    let text = protocol_md();
    assert_eq!(spec::update_spec(&text), text);
}

#[test]
fn event_display_round_trips() {
    for c in Controller::ALL {
        for ev in table(c).event_universe() {
            assert_eq!(parse_event(&ev.to_string()), Some(ev), "{ev}");
        }
    }
}

#[test]
fn model_reaches_the_deep_flows() {
    // A small bounded exploration must already drive the victim-recall and
    // memory-writeback machinery, produce no impossible-reached pairs, and
    // leak no FT-only state into the non-FT run.
    let ft = model::explore(true, 60_000, 7);
    assert!(ft.bad_pairs.is_empty(), "{:?}", ft.bad_pairs);
    let l2 = table(Controller::L2);
    let fired_srcs: BTreeSet<&str> = ft
        .fired
        .iter()
        .filter(|(c, _)| *c == Controller::L2)
        .map(|&(_, i)| l2.rows[i].src)
        .collect();
    for src in ["WaitRecall", "WaitMemWbAck", "MB", "EXT"] {
        assert!(fired_srcs.contains(src), "no L2 row fired from {src}");
    }

    let non_ft = model::explore(false, 30_000, 7);
    assert!(non_ft.bad_pairs.is_empty(), "{:?}", non_ft.bad_pairs);
    assert!(non_ft.ft_leaks.is_empty(), "{:?}", non_ft.ft_leaks);
}
