//! Each lint must actually fire: these tests mutate the real tables into
//! deliberately broken fixtures and assert the corresponding lint reports
//! them.

use ftdircmp_core::msg::MsgType;
use ftdircmp_core::transitions::{
    impossible, msg, table, Controller, ControllerTable, Event, Gate, Transition,
};
use ftdircmp_lint::{lints, model, spec};

fn rebuild(
    c: Controller,
    f: impl FnOnce(
        &mut Vec<ftdircmp_core::transitions::StateDecl>,
        &mut Vec<Transition>,
        &mut Vec<ftdircmp_core::transitions::Exception>,
    ),
) -> ControllerTable {
    let t = table(c);
    let mut states = t.states.clone();
    let mut rows = t.rows.clone();
    let mut exceptions = t.exceptions.clone();
    f(&mut states, &mut rows, &mut exceptions);
    ControllerTable::new(c, states, rows, exceptions).expect("fixture builds")
}

fn leak(t: ControllerTable) -> &'static ControllerTable {
    Box::leak(Box::new(t))
}

#[test]
fn completeness_flags_an_uncovered_pair() {
    // Drop the wildcard NackO exception: every L1 state without a NackO row
    // becomes an uncovered pair.
    let broken = rebuild(Controller::L1, |_, _, exceptions| {
        exceptions.retain(|e| e.event != msg(MsgType::NackO));
    });
    let findings = lints::completeness(&broken);
    assert!(
        findings.iter().any(|f| f.message.contains("NackO")),
        "{findings:?}"
    );
}

#[test]
fn completeness_flags_a_contradictory_exception() {
    let broken = rebuild(Controller::L1, |_, _, exceptions| {
        exceptions.push(impossible(
            "M",
            msg(MsgType::FwdGetS),
            "contradicts the existing row",
        ));
    });
    let findings = lints::completeness(&broken);
    assert!(
        findings.iter().any(|f| f
            .message
            .contains("both a transition row and an explicit exception")),
        "{findings:?}"
    );
}

#[test]
fn resource_pairing_flags_an_unbalanced_row() {
    // The NP -> WaitMem fill allocates the TBE; removing the alloc leaves
    // the books unbalanced in both modes.
    let broken = rebuild(Controller::L2, |_, rows, _| {
        let row = rows
            .iter_mut()
            .find(|r| r.src == "NP" && r.event == msg(MsgType::GetS))
            .expect("fill row exists");
        row.alloc.clear();
    });
    let findings = lints::resource_pairing(&broken);
    assert!(
        findings.iter().any(|f| f.message.contains("tbe")),
        "{findings:?}"
    );
}

#[test]
fn ft_gating_flags_a_non_ft_row_from_an_ft_state() {
    let broken = rebuild(Controller::L1, |_, rows, _| {
        let row = rows
            .iter_mut()
            .find(|r| r.src == "B" && r.event == msg(MsgType::AckO))
            .expect("backup release row exists");
        row.gate = Gate::NonFtOnly;
    });
    let findings = lints::ft_gating(&broken);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("only exists with FT")),
        "{findings:?}"
    );
}

#[test]
fn ft_gating_flags_an_ungated_row_entering_an_ft_state() {
    let broken = rebuild(Controller::L1, |_, rows, _| {
        rows.push(Transition::new("M", msg(MsgType::FwdGetX), &["B"]));
    });
    let findings = lints::ft_gating(&broken);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("enters FT-only state B")),
        "{findings:?}"
    );
}

#[test]
fn spec_drift_flags_edits_additions_and_deletions() {
    let pristine = spec::update_spec("");
    assert!(spec::drift(&pristine).is_empty());

    // A hand-edited cell.
    let edited = pristine.replace("migratory grant", "migratory graft");
    assert!(
        spec::drift(&edited)
            .iter()
            .any(|f| f.message.contains("differs")),
        "cell edit not detected"
    );

    // A deleted table line.
    let target = pristine
        .lines()
        .find(|l| l.contains("migratory grant"))
        .expect("row rendered");
    let deleted = pristine.replace(&format!("{target}\n"), "");
    assert!(
        spec::drift(&deleted)
            .iter()
            .any(|f| f.message.contains("missing entry")),
        "deletion not detected"
    );

    // An invented extra line.
    let added = pristine.replace(
        &format!("{target}\n"),
        &format!("{target}\n| `MT` | GetS | invented | both | ∅ | — | — | — | — | — | — |\n"),
    );
    assert!(
        spec::drift(&added)
            .iter()
            .any(|f| f.message.contains("not present in the code tables")),
        "addition not detected"
    );
}

#[test]
fn model_reaches_a_wrongly_declared_impossible_pair() {
    // Declare the benign stale-Inv-at-I pair impossible: the model must
    // reach it and report the contradiction.
    let l1 = leak(rebuild(Controller::L1, |_, rows, exceptions| {
        rows.retain(|r| !(r.src == "I" && r.event == msg(MsgType::Inv)));
        exceptions.push(impossible(
            "I",
            msg(MsgType::Inv),
            "broken fixture: this pair is actually reachable",
        ));
    }));
    let tables = [l1, table(Controller::L2), table(Controller::Mem)];
    let exp = model::explore_with(tables, false, 30_000, 7);
    assert!(
        exp.bad_pairs
            .iter()
            .any(|(c, pair, _)| *c == Controller::L1 && pair.contains("Inv")),
        "{:?}",
        exp.bad_pairs
    );
}

#[test]
fn model_leaves_an_undrivable_row_unfired() {
    // GetX is only ever addressed to the home bank or memory, never to an
    // L1, so a row consuming it at the L1 can never fire.  (A stale
    // AckBD-at-S fixture turned out to be genuinely reachable through a
    // reissued ownership handshake — dead rows need an undeliverable
    // event, not just an implausible state.)
    let l1 = leak(rebuild(Controller::L1, |_, rows, _| {
        let mut bogus = Transition::new("S", msg(MsgType::GetX), &["S"]);
        bogus.guard = "broken fixture: dead by construction";
        rows.push(bogus);
    }));
    let dead_idx = l1.rows.len() - 1;
    assert_eq!(l1.rows[dead_idx].event, Event::Msg(MsgType::GetX));
    let tables = [l1, table(Controller::L2), table(Controller::Mem)];
    let exp = model::explore_with(tables, true, 30_000, 7);
    assert!(
        !exp.fired.contains(&(Controller::L1, dead_idx)),
        "bogus row fired"
    );
    // Sanity: plenty of real rows did fire.
    assert!(exp.fired.len() > 50);
}
