//! `ftdircmp-lint` — static protocol analyzer for the reified FtDirCMP
//! transition tables.
//!
//! ```text
//! ftdircmp-lint check [--spec PATH | --no-spec] [--max-states N] [--max-inflight N]
//! ftdircmp-lint dump [L1|L2|Mem]
//! ftdircmp-lint write-spec [--spec PATH]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ftdircmp_core::transitions::{table, Controller};
use ftdircmp_lint::{spec, CheckOptions, Severity};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ftdircmp-lint check [--spec PATH | --no-spec] [--max-states N] [--max-inflight N]\n  ftdircmp-lint dump [L1|L2|Mem]\n  ftdircmp-lint write-spec [--spec PATH]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "check" => check(&args[1..]),
        "dump" => dump(&args[1..]),
        "write-spec" => write_spec(&args[1..]),
        _ => usage(),
    }
}

fn parse_flag<'a>(args: &'a [String], i: &mut usize, name: &str) -> Option<Option<&'a str>> {
    if args[*i] == name {
        *i += 1;
        if *i < args.len() {
            let v = &args[*i];
            *i += 1;
            Some(Some(v))
        } else {
            Some(None)
        }
    } else {
        None
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut opts = CheckOptions::default();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--no-spec" {
            opts.spec_path = None;
            i += 1;
        } else if let Some(v) = parse_flag(args, &mut i, "--spec") {
            match v {
                Some(p) => opts.spec_path = Some(PathBuf::from(p)),
                None => return usage(),
            }
        } else if let Some(v) = parse_flag(args, &mut i, "--max-states") {
            match v.and_then(|s| s.parse().ok()) {
                Some(n) => opts.max_states = n,
                None => return usage(),
            }
        } else if let Some(v) = parse_flag(args, &mut i, "--max-inflight") {
            match v.and_then(|s| s.parse().ok()) {
                Some(n) => opts.max_inflight = n,
                None => return usage(),
            }
        } else {
            return usage();
        }
    }

    let findings = ftdircmp_lint::run_check(&opts);
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    for f in &findings {
        println!("{f}");
    }
    let rows: usize = Controller::ALL.iter().map(|&c| table(c).rows.len()).sum();
    let states: usize = Controller::ALL.iter().map(|&c| table(c).states.len()).sum();
    println!(
        "checked {states} states / {rows} rows across 3 controllers: {errors} error(s), {} note(s)",
        findings.len() - errors
    );
    if errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn dump(args: &[String]) -> ExitCode {
    let which: Vec<Controller> = match args.first().map(|s| s.to_ascii_lowercase()).as_deref() {
        None => Controller::ALL.to_vec(),
        Some("l1") => vec![Controller::L1],
        Some("l2") => vec![Controller::L2],
        Some("mem") => vec![Controller::Mem],
        Some(_) => return usage(),
    };
    for c in which {
        let t = table(c);
        println!("### {} controller\n", c.name());
        for section in spec::Section::ALL {
            println!("{}", spec::render_section(t, section));
        }
    }
    ExitCode::SUCCESS
}

fn write_spec(args: &[String]) -> ExitCode {
    let mut path = PathBuf::from("PROTOCOL.md");
    let mut i = 0;
    while i < args.len() {
        if let Some(Some(p)) = parse_flag(args, &mut i, "--spec") {
            path = PathBuf::from(p);
        } else {
            return usage();
        }
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let updated = spec::update_spec(&text);
    if updated == text {
        println!("{} already up to date", path.display());
        return ExitCode::SUCCESS;
    }
    if let Err(e) = std::fs::write(&path, &updated) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("updated {}", path.display());
    ExitCode::SUCCESS
}
