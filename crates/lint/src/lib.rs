//! `ftdircmp-lint` — static protocol analyzer for the reified FtDirCMP
//! transition tables (`ftdircmp_core::transitions`).
//!
//! Five lints, run by `ftdircmp-lint check`:
//!
//! 1. **Completeness** — every (state, event) pair either has a transition
//!    row or is explicitly declared impossible/ignored.  No silent gaps.
//! 2. **Spec drift** — the machine-readable tables embedded in PROTOCOL.md
//!    §5 match the tables compiled into the simulator.
//! 3. **Abstract reachability** — an abstract single-line model of two L1s,
//!    the home L2 bank and memory is explored exhaustively; transitions
//!    that never fire and "impossible" pairs that are actually reachable
//!    are flagged.
//! 4. **Resource pairing** — per row, the resource book-keeping balances:
//!    `implied(src) + alloc - free == Σ implied(next)` in each mode, timers
//!    are armed/disarmed in matching pairs, and at most one backup per line
//!    can exist at a node (§3.1).
//! 5. **FT gating** — fault-tolerance-only states and rows are unreachable
//!    when fault tolerance is disabled.

use std::fmt;

use ftdircmp_core::msg::MsgType;
use ftdircmp_core::proto::TimeoutKind;
use ftdircmp_core::transitions::{Controller, CpuOp, Event};

pub mod lints;
pub mod model;
pub mod spec;

/// Severity of a finding.  `Error` findings fail `check`; `Note`s do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Note,
    Error,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: &'static str,
    pub severity: Severity,
    pub controller: Option<Controller>,
    pub message: String,
}

impl Finding {
    #[must_use]
    pub fn error(lint: &'static str, controller: Option<Controller>, message: String) -> Self {
        Finding {
            lint,
            severity: Severity::Error,
            controller,
            message,
        }
    }

    #[must_use]
    pub fn note(lint: &'static str, controller: Option<Controller>, message: String) -> Self {
        Finding {
            lint,
            severity: Severity::Note,
            controller,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Note => "note",
        };
        match self.controller {
            Some(c) => write!(f, "{sev}[{}] {}: {}", self.lint, c.name(), self.message),
            None => write!(f, "{sev}[{}] {}", self.lint, self.message),
        }
    }
}

/// Parses an event from its display form (`GetS`, `cpu:Load`,
/// `timeout:lost-request`, `victim`), the inverse of `Event`'s `Display`.
#[must_use]
pub fn parse_event(s: &str) -> Option<Event> {
    if s == "victim" {
        return Some(Event::Victim);
    }
    if let Some(op) = s.strip_prefix("cpu:") {
        return CpuOp::ALL
            .into_iter()
            .find(|o| o.name() == op)
            .map(Event::Cpu);
    }
    if let Some(k) = s.strip_prefix("timeout:") {
        return TimeoutKind::ALL
            .into_iter()
            .find(|t| t.label() == k)
            .map(Event::Timeout);
    }
    MsgType::ALL
        .into_iter()
        .find(|t| t.name() == s)
        .map(Event::Msg)
}

/// Options for a `check` run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Path to PROTOCOL.md (lint 2).  `None` skips the spec-drift lint.
    pub spec_path: Option<std::path::PathBuf>,
    /// State-count cap for the abstract model exploration.
    pub max_states: usize,
    /// In-flight message cap for the abstract model.
    pub max_inflight: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            spec_path: Some(std::path::PathBuf::from("PROTOCOL.md")),
            max_states: 400_000,
            max_inflight: 7,
        }
    }
}

/// Runs all five lints over the compiled-in tables.
#[must_use]
pub fn run_check(opts: &CheckOptions) -> Vec<Finding> {
    let mut findings = Vec::new();
    for c in Controller::ALL {
        let table = ftdircmp_core::transitions::table(c);
        findings.extend(lints::completeness(table));
        findings.extend(lints::resource_pairing(table));
        findings.extend(lints::ft_gating(table));
    }
    if let Some(path) = &opts.spec_path {
        match std::fs::read_to_string(path) {
            Ok(text) => findings.extend(spec::drift(&text)),
            Err(e) => findings.push(Finding::error(
                "spec-drift",
                None,
                format!("cannot read {}: {e}", path.display()),
            )),
        }
    }
    findings.extend(model::reachability(opts.max_states, opts.max_inflight));
    findings.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.lint.cmp(b.lint)));
    findings
}
