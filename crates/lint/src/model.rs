//! Lint 3 — abstract reachability.
//!
//! An abstract model of one cache line in a four-node system — two L1s
//! (`L1A`, `L1B`), the home L2 bank (`L2H`) and the memory controller
//! (`MEM`) — is explored by breadth-first search directly over the reified
//! transition tables.  The model is a deliberate over-approximation:
//!
//! * guards are not evaluated — every row matching a (facet, event) pair
//!   is branched on nondeterministically;
//! * messages live in an unordered in-flight *set* (duplicates collapse,
//!   delivery order is arbitrary), which also gives the L2 its request
//!   queueing semantics for free: an exact-state `Ignore` leaves the
//!   original world free to deliver other messages first;
//! * destination roles that the tables cannot name statically (owner,
//!   blocker, backup peer) are tracked by small per-node auxiliary
//!   variables and branched over when unknown;
//! * with fault tolerance on, every armed timeout (a facet state implying
//!   the timer resource) may fire at any moment, which reaches the
//!   recovery transitions without modelling actual message loss.
//!
//! The exploration flags (a) `Impossible`-declared pairs that the model
//! actually reaches, (b) FT-only states reached without fault tolerance,
//! and (c) rows that never fire in either mode — dead transitions — minus
//! an explicit, reasoned allowlist of rows beyond the model's fidelity.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use ftdircmp_core::msg::MsgType;
use ftdircmp_core::proto::TimeoutKind;
use ftdircmp_core::transitions::{
    table, Controller, ControllerTable, CpuOp, Event, ExceptionKind, Resource, Role, Transition,
};

use crate::{Finding, Severity};

/// The four nodes of the abstract system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    L1A,
    L1B,
    L2H,
    Mem,
}

impl Node {
    const ALL: [Node; 4] = [Node::L1A, Node::L1B, Node::L2H, Node::Mem];

    fn idx(self) -> usize {
        match self {
            Node::L1A => 0,
            Node::L1B => 1,
            Node::L2H => 2,
            Node::Mem => 3,
        }
    }

    fn controller(self) -> Controller {
        match self {
            Node::L1A | Node::L1B => Controller::L1,
            Node::L2H => Controller::L2,
            Node::Mem => Controller::Mem,
        }
    }

    fn other_l1(self) -> Node {
        match self {
            Node::L1A => Node::L1B,
            _ => Node::L1A,
        }
    }
}

/// Facet dispatch priority: transient facets are consulted before the
/// stable line facet, mirroring the handlers (a message is matched against
/// the outstanding miss/TBE first).
fn priority(c: Controller) -> &'static [&'static str] {
    match c {
        Controller::L1 => &["Miss", "Wb", "Backup", "Cache"],
        Controller::L2 => &["Tbe", "Ext", "MemBk", "Line"],
        Controller::Mem => &["Tbe", "Line"],
    }
}

/// An abstract in-flight message.  `req` is the original requester carried
/// by request-chains (resolves the `Requester` role at delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Msg {
    mt: MsgType,
    src: Node,
    dst: Node,
    req: Option<Node>,
}

/// Abstract per-node state: one table state per populated facet family,
/// plus the auxiliary role-tracking variables.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct NodeState {
    facets: BTreeMap<&'static str, &'static str>,
    owner: Option<Node>,
    sharers: BTreeSet<Node>,
    blocker: Option<Node>,
    backup_dest: Option<Node>,
    ack_peer: Option<Node>,
}

impl NodeState {
    fn init(t: &ControllerTable) -> Self {
        let mut facets = BTreeMap::new();
        facets.insert(t.default_state().family, t.default_state().name);
        NodeState {
            facets,
            owner: None,
            sharers: BTreeSet::new(),
            blocker: None,
            backup_dest: None,
            ack_peer: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct World {
    nodes: [NodeState; 4],
    flight: BTreeSet<Msg>,
}

impl World {
    fn init(tables: [&'static ControllerTable; 3]) -> Self {
        World {
            nodes: [
                NodeState::init(tables[0]),
                NodeState::init(tables[0]),
                NodeState::init(tables[1]),
                NodeState::init(tables[2]),
            ],
            flight: BTreeSet::new(),
        }
    }
}

/// Result of dispatching one event at one node.
enum Outcome {
    /// Indices (into `table.rows`) of the rows to branch over.
    Rows(Vec<usize>),
    /// Benign: consume the event with no state change.
    Drop,
    /// Every facet declares the pair impossible (or leaves it uncovered).
    Bad { uncovered: bool },
    /// CPU/timeout injection only: nothing to do.
    None,
}

/// Rows the abstract model cannot drive, with the reason.  These are
/// excluded from the dead-transition report (as notes, not errors); keep
/// this list short and honest.
const MODEL_LIMITS: &[(Controller, &str, &str, &str)] = &[];

/// Exploration outcome of one mode.
pub struct Exploration {
    pub ft: bool,
    pub states: usize,
    pub truncated: bool,
    /// (controller, row index) pairs that fired at least once.
    pub fired: HashSet<(Controller, usize)>,
    /// `facets @ event` strings for reached impossible/uncovered pairs.
    pub bad_pairs: BTreeSet<(Controller, String, bool)>,
    /// FT-only states reached (only recorded when `ft == false`).
    pub ft_leaks: BTreeSet<(Controller, &'static str)>,
}

struct Ctx {
    tables: [&'static ControllerTable; 3],
    /// Per controller: (src, event) -> row indices.
    index: [HashMap<(&'static str, Event), Vec<usize>>; 3],
    ft: bool,
    max_inflight: usize,
}

fn ctl_idx(c: Controller) -> usize {
    match c {
        Controller::L1 => 0,
        Controller::L2 => 1,
        Controller::Mem => 2,
    }
}

fn build_ctx(tables: [&'static ControllerTable; 3], ft: bool, max_inflight: usize) -> Ctx {
    let index = tables.map(|t| {
        let mut m: HashMap<(&'static str, Event), Vec<usize>> = HashMap::new();
        for (i, r) in t.rows.iter().enumerate() {
            m.entry((r.src, r.event)).or_default().push(i);
        }
        m
    });
    Ctx {
        tables,
        index,
        ft,
        max_inflight,
    }
}

impl Ctx {
    fn table_of(&self, node: Node) -> &'static ControllerTable {
        self.tables[ctl_idx(node.controller())]
    }

    /// Facet-priority dispatch of `ev` against `ns`.  A facet with active
    /// rows wins; an exact-state exception on a higher-priority facet
    /// pre-empts lower facets (this is how the L2 "queues" requests behind
    /// an active TBE); wildcard ignores are fallbacks.
    fn dispatch(&self, node: Node, ns: &NodeState, ev: Event) -> Outcome {
        let t = self.table_of(node);
        let idx = &self.index[ctl_idx(node.controller())];
        for fam in priority(node.controller()) {
            let Some(&state) = ns.facets.get(fam) else {
                continue;
            };
            let rows: Vec<usize> = idx
                .get(&(state, ev))
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&i| t.rows[i].gate.active(self.ft))
                        .collect()
                })
                .unwrap_or_default();
            if !rows.is_empty() {
                return Outcome::Rows(rows);
            }
            if let Some(ex) = t
                .exceptions
                .iter()
                .find(|e| e.state == state && e.event == ev)
            {
                match ex.kind {
                    ExceptionKind::Ignore => return Outcome::Drop,
                    ExceptionKind::Impossible => return Outcome::Bad { uncovered: false },
                    // Transparent: a lower-priority facet handles it.
                    ExceptionKind::Defer => {}
                }
            }
        }
        // No facet has active rows or an exact exception: fall back to the
        // wildcard exception for this event (gate-blind coverage would
        // mis-classify pairs whose only rows are gated off in this mode).
        if let Some(ex) = t
            .exceptions
            .iter()
            .find(|e| e.state == "*" && e.event == ev)
        {
            return match ex.kind {
                ExceptionKind::Ignore | ExceptionKind::Defer => Outcome::Drop,
                ExceptionKind::Impossible => Outcome::Bad { uncovered: false },
            };
        }
        match ev {
            Event::Msg(_) => Outcome::Bad { uncovered: true },
            // CPU ops / timeouts are injected, not delivered: an uncovered
            // pair is already lint 1's finding, just don't inject.
            _ => Outcome::None,
        }
    }

    /// Candidate destinations for one send.  Outer vec: nondeterministic
    /// branches; inner vec: all destinations of that branch (fan-out).
    fn resolve(
        &self,
        role: Role,
        node: Node,
        ns: &NodeState,
        trigger: Option<&Msg>,
    ) -> Vec<Vec<Node>> {
        let one = |n: Node| vec![vec![n]];
        let skip = vec![vec![]];
        match role {
            Role::Home => one(Node::L2H),
            Role::MemCtl => one(Node::Mem),
            Role::SelfNode => one(node),
            Role::Requester => match trigger.map(|m| m.req.unwrap_or(m.src)) {
                Some(r) => one(r),
                None => skip,
            },
            Role::Sender => match trigger {
                Some(m) => one(m.src),
                None => skip,
            },
            Role::OwnerL1 => match ns.owner {
                Some(o) => one(o),
                None => vec![vec![Node::L1A], vec![Node::L1B]],
            },
            Role::Blocker => match ns.blocker {
                Some(b) => one(b),
                None => vec![vec![Node::L1A], vec![Node::L1B]],
            },
            Role::BackupDest => match ns.backup_dest {
                Some(d) => one(d),
                None => Node::ALL
                    .into_iter()
                    .filter(|&n| n != node)
                    .map(|n| vec![n])
                    .collect(),
            },
            Role::AckPeer => match ns.ack_peer {
                Some(p) => one(p),
                None => vec![vec![Node::L2H], vec![node.other_l1()]],
            },
            // Invalidations go to every sharer except the requester
            // being granted the line.
            Role::Sharers => {
                let req = trigger.map(|m| m.req.unwrap_or(m.src));
                vec![ns
                    .sharers
                    .iter()
                    .copied()
                    .filter(|&s| Some(s) != req)
                    .collect()]
            }
        }
    }

    /// Applies `row` at `node`, returning every successor world (branching
    /// over unresolved destination roles).  `trigger` is the delivered
    /// message, if any; it has already been removed from `base.flight`.
    fn apply_row(
        &self,
        base: &World,
        node: Node,
        row: &Transition,
        trigger: Option<&Msg>,
        truncated: &mut bool,
    ) -> Vec<World> {
        let t = self.table_of(node);
        let mut w = base.clone();

        // Send destinations are resolved against the pre-update aux state.
        let option_sets: Vec<(MsgType, Vec<Vec<Node>>)> = row
            .sends
            .iter()
            .map(|&(mt, role)| (mt, self.resolve(role, node, &w.nodes[node.idx()], trigger)))
            .collect();

        // Facet update: the source family is cleared unless re-mentioned
        // (mandatory family falls back to its default), every family named
        // in `next` is set.
        let ns = &mut w.nodes[node.idx()];
        let src_family = t.state(row.src).expect("validated").family;
        ns.facets.remove(src_family);
        if src_family == t.families[0] {
            ns.facets.insert(src_family, t.default_state().name);
        }
        for n in &row.next {
            let decl = t.state(n).expect("validated");
            ns.facets.insert(decl.family, decl.name);
        }

        // Auxiliary role tracking (hand-coded; see module docs).
        // Trigger-less rows (timeouts) re-enter these states without
        // learning a new peer: preserve the recorded one.
        let req = trigger.map(|m| m.req.unwrap_or(m.src));
        for n in &row.next {
            match *n {
                "B" => ns.backup_dest = req.or(ns.backup_dest),
                "Bw" => ns.backup_dest = trigger.map(|m| m.src).or(ns.backup_dest),
                "MB" => ns.backup_dest = Some(Node::Mem),
                "Mb" | "Eb" => ns.ack_peer = trigger.map(|m| m.src).or(ns.ack_peer),
                _ => {}
            }
        }
        if row.alloc.contains(&Resource::Tbe) || row.ft_alloc.contains(&Resource::Tbe) {
            ns.blocker = trigger.map(|m| m.src);
        }
        match row.event {
            Event::Msg(MsgType::UnblockEx) => {
                ns.owner = trigger.map(|m| m.src);
                ns.sharers.clear();
            }
            Event::Msg(MsgType::Unblock) => {
                if let Some(m) = trigger {
                    ns.sharers.insert(m.src);
                }
            }
            _ => {}
        }
        let invalidated_sharers = row
            .sends
            .iter()
            .any(|&(mt, role)| mt == MsgType::Inv && role == Role::Sharers);
        if invalidated_sharers {
            ns.sharers.clear();
        }
        normalize(ns, node);

        // The requester tag carried by each emitted message: a fresh
        // request (GetS/GetX/Put) starts a new chain on behalf of its
        // sender; forwards and responses propagate the original requester.
        let out_req = |mt: MsgType| match mt {
            MsgType::GetS | MsgType::GetX | MsgType::Put => Some(node),
            _ => match trigger {
                Some(m) => m.req.or(Some(m.src)),
                None => Some(node),
            },
        };

        // Branch over the cartesian product of per-send options.
        let mut combos: Vec<Vec<Msg>> = vec![Vec::new()];
        for (mt, options) in &option_sets {
            let mut next_combos = Vec::new();
            for combo in &combos {
                for option in options {
                    let mut c = combo.clone();
                    for &dst in option {
                        c.push(Msg {
                            mt: *mt,
                            src: node,
                            dst,
                            // `req == src` is implied; canonicalize to None
                            // so equivalent worlds collapse.
                            req: out_req(*mt).filter(|&r| r != node),
                        });
                    }
                    next_combos.push(c);
                }
            }
            combos = next_combos;
        }

        let mut out = Vec::new();
        for combo in combos {
            let mut succ = w.clone();
            succ.flight.extend(combo);
            if succ.flight.len() > self.max_inflight {
                *truncated = true;
                continue;
            }
            out.push(succ);
        }
        out
    }
}

/// Canonicalizes the auxiliary variables against the facet configuration
/// so that equivalent worlds hash equal.
fn normalize(ns: &mut NodeState, node: Node) {
    let backup = ns.facets.contains_key("Backup") || ns.facets.contains_key("MemBk");
    if !backup {
        ns.backup_dest = None;
    }
    match node.controller() {
        Controller::L1 => {
            if !matches!(ns.facets.get("Cache"), Some(&"Mb" | &"Eb")) {
                ns.ack_peer = None;
            }
            ns.owner = None;
            ns.sharers.clear();
            ns.blocker = None;
        }
        Controller::L2 => {
            if !ns.facets.contains_key("Tbe") {
                ns.blocker = None;
            }
            match ns.facets.get("Line") {
                Some(&"MT") => {}
                Some(&"NP") => {
                    ns.owner = None;
                    ns.sharers.clear();
                }
                _ => ns.owner = None,
            }
            ns.ack_peer = None;
        }
        Controller::Mem => {
            if !ns.facets.contains_key("Tbe") {
                ns.blocker = None;
            }
            ns.owner = None;
            ns.sharers.clear();
            ns.ack_peer = None;
        }
    }
}

fn timer_of(k: TimeoutKind) -> Resource {
    match k {
        TimeoutKind::LostRequest => Resource::TimerLostRequest,
        TimeoutKind::LostUnblock => Resource::TimerLostUnblock,
        TimeoutKind::LostAckBd => Resource::TimerLostAckBd,
        TimeoutKind::LostData => Resource::TimerLostData,
    }
}

/// The compiled-in tables in the order the model expects.
#[must_use]
pub fn default_tables() -> [&'static ControllerTable; 3] {
    [
        table(Controller::L1),
        table(Controller::L2),
        table(Controller::Mem),
    ]
}

/// Explores one mode exhaustively (up to the caps) over the compiled-in
/// tables.
#[must_use]
pub fn explore(ft: bool, max_states: usize, max_inflight: usize) -> Exploration {
    explore_with(default_tables(), ft, max_states, max_inflight)
}

/// Explores one mode over an arbitrary table set (tests drive this with
/// deliberately broken fixtures).
#[must_use]
pub fn explore_with(
    tables: [&'static ControllerTable; 3],
    ft: bool,
    max_states: usize,
    max_inflight: usize,
) -> Exploration {
    let ctx = build_ctx(tables, ft, max_inflight);
    let mut exp = Exploration {
        ft,
        states: 0,
        truncated: false,
        fired: HashSet::new(),
        bad_pairs: BTreeSet::new(),
        ft_leaks: BTreeSet::new(),
    };

    let init = World::init(tables);
    let mut seen: HashSet<World> = HashSet::new();
    let mut queue: VecDeque<World> = VecDeque::new();
    seen.insert(init.clone());
    queue.push_back(init);

    let record = |exp: &mut Exploration, node: Node, row_idx: usize| -> bool {
        exp.fired.insert((node.controller(), row_idx))
    };

    // Novelty-guided order: successors produced by a row that had never
    // fired before are explored next (depth-first into new territory);
    // the rest are deferred to the front of the deque.  Plain BFS or DFS
    // both drown in shallow interleaving churn before reaching the deep
    // multi-hop flows (recalls, recovery) within the state cap.
    while let Some(w) = queue.pop_back() {
        if seen.len() >= max_states {
            exp.truncated = true;
            break;
        }
        let mut successors: Vec<(World, bool)> = Vec::new();

        // Message deliveries.
        for m in w.flight.iter().copied().collect::<Vec<_>>() {
            let node = m.dst;
            let ns = &w.nodes[node.idx()];
            let mut base = w.clone();
            base.flight.remove(&m);
            match ctx.dispatch(node, ns, Event::Msg(m.mt)) {
                Outcome::Rows(rows) => {
                    for ri in rows {
                        let novel = record(&mut exp, node, ri);
                        let row = &ctx.table_of(node).rows[ri];
                        successors.extend(
                            ctx.apply_row(&base, node, row, Some(&m), &mut exp.truncated)
                                .into_iter()
                                .map(|s| (s, novel)),
                        );
                    }
                }
                Outcome::Drop => successors.push((base, false)),
                Outcome::Bad { uncovered } => {
                    let facets: Vec<&str> = ns.facets.values().copied().collect();
                    exp.bad_pairs.insert((
                        node.controller(),
                        format!("{} @ {}", facets.join("+"), Event::Msg(m.mt)),
                        uncovered,
                    ));
                    successors.push((base, false)); // consume and continue
                }
                Outcome::None => {}
            }
        }

        // CPU ops at the L1s.
        for node in [Node::L1A, Node::L1B] {
            for op in CpuOp::ALL {
                if let Outcome::Rows(rows) =
                    ctx.dispatch(node, &w.nodes[node.idx()], Event::Cpu(op))
                {
                    for ri in rows {
                        let novel = record(&mut exp, node, ri);
                        let row = &ctx.table_of(node).rows[ri];
                        successors.extend(
                            ctx.apply_row(&w, node, row, None, &mut exp.truncated)
                                .into_iter()
                                .map(|s| (s, novel)),
                        );
                    }
                }
            }
        }

        // Internal victim selection at the home bank: a quiescent resident
        // line may be evicted at any moment to make room for another fill.
        // The exact-state `Impossible` exceptions on TBE/EXT/MB facets stop
        // the dispatch, mirroring the implementation's victim predicate.
        if let Outcome::Rows(rows) =
            ctx.dispatch(Node::L2H, &w.nodes[Node::L2H.idx()], Event::Victim)
        {
            for ri in rows {
                let novel = record(&mut exp, Node::L2H, ri);
                let row = &ctx.table_of(Node::L2H).rows[ri];
                successors.extend(
                    ctx.apply_row(&w, Node::L2H, row, None, &mut exp.truncated)
                        .into_iter()
                        .map(|s| (s, novel)),
                );
            }
        }

        // Timeouts: with FT on, any armed timer may fire at any moment.  A
        // timer is armed exactly when a populated facet state implies it.
        if ft {
            for node in Node::ALL {
                let t = ctx.table_of(node);
                for k in TimeoutKind::ALL {
                    let armed = w.nodes[node.idx()].facets.values().any(|s| {
                        t.state(s)
                            .expect("validated")
                            .implied(true)
                            .contains(&timer_of(k))
                    });
                    if !armed {
                        continue;
                    }
                    if let Outcome::Rows(rows) =
                        ctx.dispatch(node, &w.nodes[node.idx()], Event::Timeout(k))
                    {
                        for ri in rows {
                            let novel = record(&mut exp, node, ri);
                            let row = &ctx.table_of(node).rows[ri];
                            successors.extend(
                                ctx.apply_row(&w, node, row, None, &mut exp.truncated)
                                    .into_iter()
                                    .map(|s| (s, novel)),
                            );
                        }
                    }
                }
            }
        }

        for (succ, novel) in successors {
            if !ft {
                for node in Node::ALL {
                    let t = ctx.table_of(node);
                    for s in succ.nodes[node.idx()].facets.values() {
                        if t.state(s).expect("validated").ft_only {
                            exp.ft_leaks.insert((node.controller(), s));
                        }
                    }
                }
            }
            if !seen.contains(&succ) {
                seen.insert(succ.clone());
                if novel {
                    queue.push_back(succ);
                } else {
                    queue.push_front(succ);
                }
            }
        }
    }
    exp.states = seen.len();
    exp
}

/// Lint 3 (+ the dynamic half of lint 5) entry point.
#[must_use]
pub fn reachability(max_states: usize, max_inflight: usize) -> Vec<Finding> {
    // Split the state budget between the two modes; the FT run is the
    // larger machine.
    let non_ft = explore(false, max_states / 4, max_inflight);
    let ft = explore(true, max_states, max_inflight);
    let mut findings = Vec::new();

    for exp in [&non_ft, &ft] {
        for (c, pair, uncovered) in &exp.bad_pairs {
            findings.push(Finding::error(
                "reachability",
                Some(*c),
                format!(
                    "abstract model ({} mode) delivers `{pair}`, which the table declares {}",
                    if exp.ft { "ft" } else { "non-ft" },
                    if *uncovered {
                        "nothing for (uncovered)"
                    } else {
                        "impossible"
                    }
                ),
            ));
        }
    }
    for (c, state) in &non_ft.ft_leaks {
        findings.push(Finding::error(
            "ft-gating",
            Some(*c),
            format!("FT-only state {state} reached with fault tolerance disabled"),
        ));
    }

    let truncated = non_ft.truncated || ft.truncated;
    for c in Controller::ALL {
        let t = table(c);
        for (i, row) in t.rows.iter().enumerate() {
            if non_ft.fired.contains(&(c, i)) || ft.fired.contains(&(c, i)) {
                continue;
            }
            let limit = MODEL_LIMITS.iter().find(|(lc, src, ev, guard)| {
                *lc == c
                    && *src == row.src
                    && *ev == row.event.to_string()
                    && (*guard == "*" || *guard == row.guard)
            });
            let label = format!(
                "row `{} @ {}`{} never fires in the abstract model",
                row.src,
                row.event,
                if row.guard.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", row.guard)
                }
            );
            if limit.is_some() {
                findings.push(Finding::note(
                    "reachability",
                    Some(c),
                    format!("{label} (allowlisted: beyond the model's fidelity)"),
                ));
            } else {
                findings.push(Finding {
                    lint: "reachability",
                    severity: if truncated {
                        Severity::Note
                    } else {
                        Severity::Error
                    },
                    controller: Some(c),
                    message: if truncated {
                        format!("{label} (exploration truncated; advisory)")
                    } else {
                        format!("{label}: dead transition?")
                    },
                });
            }
        }
    }
    if truncated {
        findings.push(Finding::note(
            "reachability",
            None,
            format!(
                "exploration truncated (non-ft: {} states{}, ft: {} states{}); dead-transition results are advisory",
                non_ft.states,
                if non_ft.truncated { " — capped" } else { "" },
                ft.states,
                if ft.truncated { " — capped" } else { "" },
            ),
        ));
    }
    findings
}
