//! The static table lints: completeness (1), resource pairing (4) and
//! FT gating (5).  Spec drift (2) lives in [`crate::spec`], reachability
//! (3) in [`crate::model`].

use std::collections::BTreeMap;

use ftdircmp_core::transitions::{ControllerTable, Coverage, Gate, Resource, Transition};

use crate::Finding;

/// Lint 1 — completeness.  Every (state, event) pair in the controller's
/// event universe must be covered by a row or an explicit exception, and
/// exact-state exceptions must not contradict rows for the same pair.
#[must_use]
pub fn completeness(table: &ControllerTable) -> Vec<Finding> {
    let mut findings = Vec::new();
    for state in &table.states {
        for event in table.event_universe() {
            if table.coverage(state.name, event) == Coverage::Uncovered {
                findings.push(Finding::error(
                    "completeness",
                    Some(table.controller),
                    format!(
                        "({}, {event}) is neither handled nor declared impossible/ignored",
                        state.name
                    ),
                ));
            }
        }
    }
    for ex in &table.exceptions {
        if ex.state != "*" && table.rows_for(ex.state, ex.event).next().is_some() {
            findings.push(Finding::error(
                "completeness",
                Some(table.controller),
                format!(
                    "({}, {}) has both a transition row and an explicit exception",
                    ex.state, ex.event
                ),
            ));
        }
    }
    findings
}

/// Signed resource multiset.
type Books = BTreeMap<Resource, i64>;

fn add(books: &mut Books, rs: &[Resource], delta: i64) {
    for &r in rs {
        *books.entry(r).or_insert(0) += delta;
    }
}

fn books_of(table: &ControllerTable, row: &Transition, ft: bool) -> Books {
    let mut books = Books::new();
    let src = table.state(row.src).expect("validated");
    add(&mut books, &src.implied(ft), 1);
    add(&mut books, &row.alloc, 1);
    add(&mut books, &row.free, -1);
    if ft {
        add(&mut books, &row.ft_alloc, 1);
        add(&mut books, &row.ft_free, -1);
    }
    for next in &row.next {
        let n = table.state(next).expect("validated");
        add(&mut books, &n.implied(ft), -1);
    }
    books.retain(|_, v| *v != 0);
    books
}

fn describe(books: &Books) -> String {
    books
        .iter()
        .map(|(r, v)| {
            if *v > 0 {
                format!("{} leaked x{v}", r.name())
            } else {
                format!("{} double-freed x{}", r.name(), -v)
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Lint 4 — resource pairing.  For each row and each mode in which it is
/// active, `implied(src) + alloc - free` must equal the sum of the
/// resources implied by the next states: MSHRs/TBEs/backups are allocated
/// and freed in pairs, and timers are armed exactly when a state that
/// implies them is entered (and disarmed when it is left).  Also enforces
/// the at-most-one-backup invariant (§3.1) structurally.
#[must_use]
pub fn resource_pairing(table: &ControllerTable) -> Vec<Finding> {
    let mut findings = Vec::new();
    for row in &table.rows {
        for ft in [false, true] {
            if !row.gate.active(ft) {
                continue;
            }
            let books = books_of(table, row, ft);
            if !books.is_empty() {
                findings.push(Finding::error(
                    "resource-pairing",
                    Some(table.controller),
                    format!(
                        "row `{} @ {}`{} ({} mode): {}",
                        row.src,
                        row.event,
                        if row.guard.is_empty() {
                            String::new()
                        } else {
                            format!(" [{}]", row.guard)
                        },
                        if ft { "ft" } else { "non-ft" },
                        describe(&books)
                    ),
                ));
            }
        }
    }
    // At most one backup per line per node: only a single facet family may
    // contain states that imply a backup resource, so no facet combination
    // can ever hold two.
    for resource in [Resource::Backup, Resource::MemBackup] {
        let families: Vec<&str> = table
            .states
            .iter()
            .filter(|s| s.implies.contains(&resource) || s.ft_implies.contains(&resource))
            .map(|s| s.family)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        if families.len() > 1 {
            findings.push(Finding::error(
                "resource-pairing",
                Some(table.controller),
                format!(
                    "states implying {} span families {:?}: a line could hold two backups at once (§3.1)",
                    resource.name(),
                    families
                ),
            ));
        }
    }
    findings
}

/// Lint 5 — FT gating (static half).  Rows active without fault tolerance
/// must not produce FT-only states, rows that can never run are flagged,
/// and `ft_alloc`/`ft_free` on a row that never runs with FT is
/// contradictory.  The dynamic half — no FT-only state reachable in the
/// non-FT abstract exploration — is checked by [`crate::model`].
#[must_use]
pub fn ft_gating(table: &ControllerTable) -> Vec<Finding> {
    let mut findings = Vec::new();
    for row in &table.rows {
        let src_ft = table.state(row.src).expect("validated").ft_only;
        if src_ft && row.gate == Gate::NonFtOnly {
            findings.push(Finding::error(
                "ft-gating",
                Some(table.controller),
                format!(
                    "row `{} @ {}` is non-ft-gated but its source state only exists with FT",
                    row.src, row.event
                ),
            ));
        }
        if row.gate == Gate::NonFtOnly && !(row.ft_alloc.is_empty() && row.ft_free.is_empty()) {
            findings.push(Finding::error(
                "ft-gating",
                Some(table.controller),
                format!(
                    "row `{} @ {}` is non-ft-gated but declares ft resource deltas",
                    row.src, row.event
                ),
            ));
        }
        // A row reachable without FT (gate both/non-ft, non-FT source) must
        // not enter an FT-only state.
        if row.gate != Gate::FtOnly && !src_ft {
            for next in &row.next {
                if table.state(next).expect("validated").ft_only {
                    findings.push(Finding::error(
                        "ft-gating",
                        Some(table.controller),
                        format!(
                            "row `{} @ {}` can run without FT but enters FT-only state {next}",
                            row.src, row.event
                        ),
                    ));
                }
            }
        }
    }
    findings
}
