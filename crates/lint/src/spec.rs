//! Lint 2 — spec drift.
//!
//! PROTOCOL.md §5 embeds the transition tables as SLICC-style markdown
//! tables between HTML-comment markers:
//!
//! ```text
//! <!-- ftdircmp-lint:rows L1 -->
//! | Src | Event | Guard | Gate | Next | Sends | ... |
//! ...
//! <!-- ftdircmp-lint:end -->
//! ```
//!
//! `render_*` produce those sections from the compiled-in tables,
//! [`drift`] parses the sections back out of PROTOCOL.md and diffs them
//! structurally against the tables, and [`update_spec`] rewrites the
//! sections in place (the `write-spec` subcommand).

use ftdircmp_core::transitions::{table, Controller, ControllerTable, ExceptionKind};

use crate::Finding;

/// The three per-controller section kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    States,
    Rows,
    Exceptions,
}

impl Section {
    pub const ALL: [Section; 3] = [Section::States, Section::Rows, Section::Exceptions];

    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Section::States => "states",
            Section::Rows => "rows",
            Section::Exceptions => "exceptions",
        }
    }
}

fn marker(section: Section, c: Controller) -> String {
    format!("<!-- ftdircmp-lint:{} {} -->", section.tag(), c.name())
}

const END_MARKER: &str = "<!-- ftdircmp-lint:end -->";

fn dashes(n: usize) -> String {
    let mut s = String::from("|");
    for _ in 0..n {
        s.push_str("---|");
    }
    s
}

fn fmt_list<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
    if items.is_empty() {
        "—".to_owned()
    } else {
        items.iter().map(f).collect::<Vec<_>>().join(", ")
    }
}

/// Header + body cells for one section of one controller table.
#[must_use]
pub fn section_cells(t: &ControllerTable, section: Section) -> (Vec<String>, Vec<Vec<String>>) {
    match section {
        Section::States => {
            let header = ["State", "Family", "Implies", "FT implies", "Description"]
                .map(String::from)
                .to_vec();
            let body = t
                .states
                .iter()
                .map(|s| {
                    vec![
                        if s.ft_only {
                            format!("`{}` **[FT]**", s.name)
                        } else {
                            format!("`{}`", s.name)
                        },
                        s.family.to_owned(),
                        fmt_list(&s.implies, |r| r.name().to_owned()),
                        fmt_list(&s.ft_implies, |r| r.name().to_owned()),
                        s.desc.to_owned(),
                    ]
                })
                .collect();
            (header, body)
        }
        Section::Rows => {
            let header = [
                "Src", "Event", "Guard", "Gate", "Next", "Sends", "Alloc", "Free", "FT alloc",
                "FT free", "Ref",
            ]
            .map(String::from)
            .to_vec();
            let body = t
                .rows
                .iter()
                .map(|r| {
                    vec![
                        format!("`{}`", r.src),
                        r.event.to_string(),
                        if r.guard.is_empty() {
                            "—".to_owned()
                        } else {
                            r.guard.to_owned()
                        },
                        r.gate.name().to_owned(),
                        if r.next.is_empty() {
                            "∅".to_owned()
                        } else {
                            r.next
                                .iter()
                                .map(|n| format!("`{n}`"))
                                .collect::<Vec<_>>()
                                .join(" ")
                        },
                        fmt_list(&r.sends, |(mt, role)| {
                            format!("{}→{}", mt.name(), role.name())
                        }),
                        fmt_list(&r.alloc, |x| x.name().to_owned()),
                        fmt_list(&r.free, |x| x.name().to_owned()),
                        fmt_list(&r.ft_alloc, |x| x.name().to_owned()),
                        fmt_list(&r.ft_free, |x| x.name().to_owned()),
                        if r.paper.is_empty() {
                            "—".to_owned()
                        } else {
                            r.paper.to_owned()
                        },
                    ]
                })
                .collect();
            (header, body)
        }
        Section::Exceptions => {
            let header = ["State", "Event", "Kind", "Reason"]
                .map(String::from)
                .to_vec();
            let body = t
                .exceptions
                .iter()
                .map(|e| {
                    vec![
                        format!("`{}`", e.state),
                        e.event.to_string(),
                        match e.kind {
                            ExceptionKind::Impossible => "impossible".to_owned(),
                            ExceptionKind::Ignore => "ignore".to_owned(),
                            ExceptionKind::Defer => "defer".to_owned(),
                        },
                        e.reason.to_owned(),
                    ]
                })
                .collect();
            (header, body)
        }
    }
}

/// Renders one marked section (markers included).
#[must_use]
pub fn render_section(t: &ControllerTable, section: Section) -> String {
    let (header, body) = section_cells(t, section);
    let mut out = String::new();
    out.push_str(&marker(section, t.controller));
    out.push('\n');
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&dashes(header.len()));
    out.push('\n');
    for row in &body {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out.push_str(END_MARKER);
    out.push('\n');
    out
}

/// Renders the full §5 body: all nine sections with small subheadings.
#[must_use]
pub fn render_spec_body() -> String {
    let mut out = String::new();
    for c in Controller::ALL {
        let t = table(c);
        out.push_str(&format!("### {} controller\n\n", c.name()));
        out.push_str(&format!(
            "{} facet families: {}.  The first family is mandatory \
             (default `{}`); the others are optional.\n\n",
            t.families.len(),
            t.families.join(", "),
            t.default_state().name
        ));
        for section in Section::ALL {
            out.push_str(&render_section(t, section));
            out.push('\n');
        }
    }
    out.pop();
    out
}

/// Extracts the body lines of a marked section from `text`, or `None` if
/// the markers are absent.
#[must_use]
pub fn extract_section(text: &str, section: Section, c: Controller) -> Option<Vec<String>> {
    let open = marker(section, c);
    let mut lines = text.lines();
    lines.by_ref().find(|l| l.trim() == open)?;
    let mut body = Vec::new();
    for line in lines {
        if line.trim() == END_MARKER {
            return Some(body);
        }
        body.push(line.to_owned());
    }
    None // unterminated section
}

/// Parses markdown table lines into cell rows, skipping the header and the
/// `|---|` separator.
#[must_use]
pub fn parse_cells(lines: &[String]) -> Vec<Vec<String>> {
    lines
        .iter()
        .map(|l| l.trim())
        .filter(|l| l.starts_with('|'))
        .filter(|l| !l.trim_matches(|c| c == '|' || c == '-').is_empty())
        .skip(1) // header
        .map(|l| {
            l.trim_matches('|')
                .split('|')
                .map(|cell| cell.trim().to_owned())
                .collect()
        })
        .collect()
}

/// Short identity of a parsed/expected row for diff messages.
fn row_key(section: Section, cells: &[String]) -> String {
    let take = match section {
        Section::States => 1,
        Section::Rows => 3, // src, event, guard
        Section::Exceptions => 2,
    };
    cells
        .iter()
        .take(take)
        .cloned()
        .collect::<Vec<_>>()
        .join(" @ ")
}

/// Diffs one section of PROTOCOL.md against the compiled-in table.
fn drift_section(text: &str, t: &ControllerTable, section: Section) -> Vec<Finding> {
    let c = t.controller;
    let Some(body) = extract_section(text, section, c) else {
        return vec![Finding::error(
            "spec-drift",
            Some(c),
            format!(
                "PROTOCOL.md has no `{}` section (run `ftdircmp-lint write-spec`)",
                marker(section, c)
            ),
        )];
    };
    let found = parse_cells(&body);
    let (_, expected) = section_cells(t, section);
    let mut findings = Vec::new();
    let mut fi = found.iter();
    for exp in &expected {
        match fi.next() {
            None => findings.push(Finding::error(
                "spec-drift",
                Some(c),
                format!(
                    "{} section: missing entry `{}`",
                    section.tag(),
                    row_key(section, exp)
                ),
            )),
            Some(got) if got != exp => findings.push(Finding::error(
                "spec-drift",
                Some(c),
                format!(
                    "{} section: `{}` differs\n    spec:  | {} |\n    code:  | {} |",
                    section.tag(),
                    row_key(section, exp),
                    got.join(" | "),
                    exp.join(" | ")
                ),
            )),
            Some(_) => {}
        }
    }
    for extra in fi {
        findings.push(Finding::error(
            "spec-drift",
            Some(c),
            format!(
                "{} section: spec has entry `{}` not present in the code tables",
                section.tag(),
                row_key(section, extra)
            ),
        ));
    }
    findings
}

/// Lint 2 entry point: diffs every marked section of PROTOCOL.md against
/// the compiled-in tables.
#[must_use]
pub fn drift(protocol_text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for c in Controller::ALL {
        let t = table(c);
        for section in Section::ALL {
            findings.extend(drift_section(protocol_text, t, section));
        }
    }
    findings
}

/// Rewrites (or appends) the marked sections in a PROTOCOL.md text and
/// returns the updated document (the `write-spec` subcommand).
#[must_use]
pub fn update_spec(text: &str) -> String {
    let mut out = text.to_owned();
    let mut missing: Vec<(Controller, Section)> = Vec::new();
    for c in Controller::ALL {
        let t = table(c);
        for section in Section::ALL {
            let open = marker(section, c);
            let rendered = render_section(t, section);
            if let Some(start) = out.find(&open) {
                if let Some(end_rel) = out[start..].find(END_MARKER) {
                    let end = start + end_rel + END_MARKER.len();
                    // Preserve text around the section; rendered has no
                    // trailing newline beyond the marker line.
                    let rendered = rendered.trim_end_matches('\n');
                    out.replace_range(start..end, rendered);
                    continue;
                }
            }
            missing.push((c, section));
        }
    }
    if !missing.is_empty() {
        if !out.ends_with('\n') {
            out.push('\n');
        }
        if !out.contains("## 5. Machine-readable transition tables") {
            out.push_str("\n## 5. Machine-readable transition tables\n\n");
            out.push_str(
                "Generated by `cargo run -p ftdircmp-lint -- write-spec`; checked by \
                 `ftdircmp-lint check` (lint 2).  Do not edit the marked tables by \
                 hand — edit `crates/core/src/transitions/` and regenerate.\n",
            );
        }
        let mut last_ctl = None;
        for (c, section) in missing {
            let t = table(c);
            if last_ctl != Some(c) {
                out.push_str(&format!("\n### {} controller\n\n", c.name()));
                out.push_str(&format!(
                    "{} facet families: {}.  The first family is mandatory \
                     (default `{}`); the others are optional.\n\n",
                    t.families.len(),
                    t.families.join(", "),
                    t.default_state().name
                ));
                last_ctl = Some(c);
            }
            out.push_str(&render_section(t, section));
            out.push('\n');
        }
    }
    out
}
