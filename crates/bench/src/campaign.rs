//! Parallel deterministic campaign runner.
//!
//! Every figure/table binary sweeps a grid of *(workload spec, system
//! configuration, seed)* cells, and every cell is an independent,
//! fully-deterministic simulation — an embarrassingly parallel campaign.
//! This module fans the cells across a scoped worker pool while keeping the
//! output **byte-identical** to a sequential sweep:
//!
//! * cells are enumerated up front in a deterministic order;
//! * each (cell, seed) unit writes its [`SimReport`] into a pre-indexed
//!   result slot, so aggregation order never depends on thread scheduling;
//! * each unit runs the exact same per-seed construction as
//!   [`crate::run_spec`] (shared helper), so a campaign at `--jobs 1` and at
//!   `--jobs N` produce identical reports.
//!
//! Worker count comes from `--jobs N` on the command line, then the
//! `FTDIRCMP_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! # Checkpoint-fork mode
//!
//! With [`Campaign::warmup_checkpoint`] set (CLI: `--warmup-checkpoint
//! [PCT]`), cells that differ **only in their fault configuration** and run
//! the same workload under the same seed share one fault-free warmup: the
//! runner simulates the common prefix once, takes a
//! [`ftdircmp_core::SystemSnapshot`], and forks every member of the group
//! from the checkpoint with its own faults switched on at the fork point.
//! Because neither the fault-free path nor a `drop_indices` schedule
//! consumes random numbers, a forked run is byte-identical to a from-scratch
//! run whose faults were gated until the same retirement point — and
//! fault-free members stay byte-identical to the classic path. Absolute
//! numbers for *faulty* cells change versus classic mode (faults only start
//! after warmup; see DESIGN.md §8), so the mode is opt-in; with the flag off
//! the runner is byte-identical to the pre-checkpoint implementation.
//!
//! # Example
//!
//! ```
//! use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
//! use ftdircmp_core::SystemConfig;
//! use ftdircmp_workloads::WorkloadSpec;
//!
//! let spec = WorkloadSpec::named("water-sp").unwrap();
//! let cells = vec![
//!     Cell::new("base", spec.clone(), SystemConfig::dircmp(), 2),
//!     Cell::new("ft", spec, SystemConfig::ftdircmp(), 2),
//! ];
//! let opts = Campaign {
//!     jobs: 2,
//!     progress: false,
//!     warmup_checkpoint: None,
//! };
//! let results = run_campaign(&cells, &opts);
//! assert_eq!(results.len(), 2);
//! assert_eq!(results[0].len(), 2); // one report per seed, in seed order
//! ```

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use ftdircmp_core::{RunError, SimReport, System, SystemConfig};
use ftdircmp_noc::FaultConfig;
use ftdircmp_workloads::WorkloadSpec;

use crate::{expect_coherent, run_seed_fallible};

/// How one campaign unit failed.
///
/// [`run_units_caught`] and [`run_campaign_caught`] catch worker panics and
/// turn them into [`CellError::Panicked`] values identifying the exact
/// (spec, seed, fault config) that blew up, so a long-lived caller (the
/// `ftdircmp-serve` daemon) can log and quarantine the cell instead of
/// aborting the whole process.
#[derive(Debug, Clone)]
pub enum CellError {
    /// The simulation itself failed (deadlock, invalid configuration).
    Run(RunError),
    /// The unit's worker panicked mid-cell.
    Panicked {
        /// Display label of the owning cell.
        label: String,
        /// Workload spec name.
        spec: String,
        /// Seed of the failing unit.
        seed: u64,
        /// Debug rendering of the unit's fault configuration.
        faults: String,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Run(e) => e.fmt(f),
            CellError::Panicked {
                label,
                spec,
                seed,
                faults,
                message,
            } => write!(
                f,
                "campaign unit panicked: cell {label:?} (spec {spec}, seed {seed}, \
                 faults {faults}): {message}"
            ),
        }
    }
}

impl std::error::Error for CellError {}

impl From<RunError> for CellError {
    fn from(e: RunError) -> Self {
        CellError::Run(e)
    }
}

/// Renders a caught panic payload (strings pass through, everything else
/// gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One campaign cell: a workload under a configuration, averaged over
/// `seeds` seeds.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Display label used in progress lines (e.g. `"ocean/ftdircmp-1000"`).
    pub label: String,
    /// Workload to generate.
    pub spec: WorkloadSpec,
    /// System configuration to run it under.
    pub config: SystemConfig,
    /// Number of seeds (reports come back in seed order).
    pub seeds: u64,
}

impl Cell {
    /// Creates a cell.
    pub fn new(
        label: impl Into<String>,
        spec: WorkloadSpec,
        config: SystemConfig,
        seeds: u64,
    ) -> Self {
        Cell {
            label: label.into(),
            spec,
            config,
            seeds,
        }
    }
}

/// Campaign execution options.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Worker threads. `1` runs inline on the calling thread (the
    /// sequential reference path).
    pub jobs: usize,
    /// Print per-unit progress and wall time to stderr.
    pub progress: bool,
    /// Checkpoint-fork warmup threshold, as a percentage of each workload's
    /// memory operations (see the module docs). `None` runs every cell from
    /// scratch (the classic, pre-checkpoint behaviour).
    pub warmup_checkpoint: Option<f64>,
}

impl Campaign {
    /// Options from argv/environment: worker count per [`crate::BenchArgs::jobs`],
    /// checkpoint mode per [`crate::BenchArgs::warmup_checkpoint`], progress on.
    pub fn from_args(args: &crate::BenchArgs) -> Self {
        Campaign {
            jobs: args.jobs(),
            progress: true,
            warmup_checkpoint: args.warmup_checkpoint(),
        }
    }
}

/// Runs every cell of the campaign, panicking (like [`crate::run_spec`]) on
/// any failed or incoherent run.
///
/// Returns one `Vec<SimReport>` per input cell, index-aligned with `cells`
/// and seed-ordered within each cell — identical to calling
/// [`crate::run_spec`] on each cell in order.
///
/// # Panics
///
/// Panics if any run deadlocks or violates a coherence invariant.
pub fn run_campaign(cells: &[Cell], opts: &Campaign) -> Vec<Vec<SimReport>> {
    run_campaign_fallible(cells, opts)
        .into_iter()
        .zip(cells)
        .map(|(results, cell)| {
            results
                .into_iter()
                .enumerate()
                .map(|(seed, r)| expect_coherent(cell.spec.name, seed as u64, r))
                .collect()
        })
        .collect()
}

/// Like [`run_campaign`] but returns `Err` results untouched (used to
/// demonstrate DirCMP's deadlock failure mode).
///
/// # Panics
///
/// Propagates a worker panic (identifying the failing cell, seed, and
/// fault configuration) — callers that must survive poisoned cells use
/// [`run_campaign_caught`] instead.
pub fn run_campaign_fallible(
    cells: &[Cell],
    opts: &Campaign,
) -> Vec<Vec<Result<SimReport, RunError>>> {
    run_campaign_caught(cells, opts)
        .into_iter()
        .map(|results| {
            results
                .into_iter()
                .map(|r| {
                    r.map_err(|e| match e {
                        CellError::Run(e) => e,
                        p @ CellError::Panicked { .. } => panic!("{p}"),
                    })
                })
                .collect()
        })
        .collect()
}

/// Like [`run_campaign_fallible`], but worker panics are caught per unit
/// and returned as [`CellError::Panicked`] instead of aborting the
/// process. This is the entry point the `ftdircmp-serve` daemon uses: a
/// poisoned cell is quarantined, the rest of the campaign completes.
pub fn run_campaign_caught(
    cells: &[Cell],
    opts: &Campaign,
) -> Vec<Vec<Result<SimReport, CellError>>> {
    // Deterministic unit order: cells in input order, seeds ascending.
    let units: Vec<Unit> = cells
        .iter()
        .flat_map(|c| {
            (0..c.seeds).map(|seed| Unit {
                label: c.label.clone(),
                spec: c.spec.clone(),
                config: c.config.clone(),
                seed,
            })
        })
        .collect();
    let flat = run_units_caught(&units, opts);

    // Reassemble into the pre-indexed shape: results[cell][seed].
    let mut flat = flat.into_iter();
    cells
        .iter()
        .map(|c| (&mut flat).take(c.seeds as usize).collect())
        .collect()
}

/// One executable simulation unit: a workload under a configuration at one
/// explicit seed. [`run_campaign_caught`] expands every [`Cell`] into its
/// per-seed units; the `ftdircmp-serve` daemon builds sparse unit lists
/// directly when resuming a half-finished campaign (only the units whose
/// results never landed are re-run).
#[derive(Debug, Clone)]
pub struct Unit {
    /// Display label used in progress lines.
    pub label: String,
    /// Workload to generate.
    pub spec: WorkloadSpec,
    /// System configuration to run it under.
    pub config: SystemConfig,
    /// Seed for this unit.
    pub seed: u64,
}

/// Runs every unit, catching worker panics per unit. Results come back
/// index-aligned with `units`.
///
/// Checkpoint-fork grouping (see the module docs) applies to any subset of
/// units: a member's forked result depends only on the shared warmup
/// (spec, seed, config-modulo-faults) and its own faults, never on which
/// other members run alongside it — so resuming a campaign with a sparse
/// unit list reproduces the exact per-unit results of the full campaign.
pub fn run_units_caught(units: &[Unit], opts: &Campaign) -> Vec<Result<SimReport, CellError>> {
    let slots: Vec<OnceLock<Result<SimReport, CellError>>> =
        units.iter().map(|_| OnceLock::new()).collect();
    let total = units.len();
    let completed = AtomicUsize::new(0);
    let started = Instant::now();

    let note_progress = |i: usize, result: &Result<SimReport, CellError>, t: Instant| {
        if !opts.progress {
            return;
        }
        let u = &units[i];
        let n = completed.fetch_add(1, Ordering::Relaxed) + 1;
        let status = match result {
            Ok(r) => format!("{} cycles", r.cycles),
            Err(CellError::Run(RunError::Deadlock { at, .. })) => {
                format!("deadlock at cycle {at}")
            }
            Err(CellError::Run(RunError::InvalidConfig(_))) => "invalid config".to_string(),
            Err(CellError::Panicked { .. }) => "PANICKED".to_string(),
        };
        eprintln!(
            "[campaign {n}/{total}] {} seed {}: {status} in {:.2}s",
            u.label,
            u.seed,
            t.elapsed().as_secs_f64()
        );
    };
    let finish_unit = |i: usize, result: Result<SimReport, CellError>, t: Instant| {
        note_progress(i, &result, t);
        assert!(
            slots[i].set(result).is_ok(),
            "campaign unit {i} computed twice"
        );
    };
    // Runs `f`, converting a panic into the typed per-unit error.
    let catch = |i: usize,
                 f: &mut dyn FnMut() -> Result<SimReport, RunError>|
     -> Result<SimReport, CellError> {
        let u = &units[i];
        match std::panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => r.map_err(CellError::Run),
            Err(payload) => Err(CellError::Panicked {
                label: u.label.clone(),
                spec: u.spec.name.to_string(),
                seed: u.seed,
                faults: format!("{:?}", u.config.mesh.faults),
                message: panic_message(payload.as_ref()),
            }),
        }
    };
    let run_unit_classic = |i: usize| {
        let u = &units[i];
        let t = Instant::now();
        let result = catch(i, &mut || run_seed_fallible(&u.spec, &u.config, u.seed));
        finish_unit(i, result, t);
    };
    let run_group = |group: &[usize]| {
        // Singleton groups (and everything when checkpointing is off) take
        // the classic from-scratch path: nothing to share.
        let (Some(pct), [first, rest @ ..]) = (opts.warmup_checkpoint, group) else {
            group.iter().copied().for_each(run_unit_classic);
            return;
        };
        if rest.is_empty() {
            run_unit_classic(*first);
            return;
        }
        // Shared fault-free warmup: identical workload + seed across the
        // group, faults stripped. Neither the fault-free injector path nor a
        // deterministic drop schedule consumes RNG, so swapping each
        // member's faults in at the fork point reproduces a from-scratch run
        // with faults gated until the same retirement count.
        let proto = &units[*first];
        let seed = proto.seed;
        let t_warm = Instant::now();
        let warm = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let wl = proto.spec.generate(proto.config.tiles, 1000 + seed);
            let mut warm_cfg = proto.config.clone().with_seed(1000 + seed);
            warm_cfg.mesh.faults = FaultConfig::none();
            let target =
                (wl.total_mem_ops() as f64 * (pct.clamp(0.0, 100.0) / 100.0)).ceil() as u64;
            System::new(warm_cfg, &wl).and_then(|mut sys| {
                sys.run_until_retired(target)?;
                Ok((sys, target))
            })
        }));
        let Ok(Ok((sys, target))) = warm else {
            // The fault-free prefix itself failed (deadlock, invalid
            // config, or a panic): fall back to full runs so each member
            // reports its own error through the unchanged classic path.
            group.iter().copied().for_each(run_unit_classic);
            return;
        };
        if opts.progress {
            eprintln!(
                "[campaign] warmup {} seed {seed}: {target} mem ops shared by {} cells in {:.2}s",
                proto.label,
                group.len(),
                t_warm.elapsed().as_secs_f64()
            );
        }
        let snap = sys.snapshot();
        let mut warm = Some(sys);
        for &i in group {
            let t = Instant::now();
            let mut forked = Some(warm.take().unwrap_or_else(|| System::restore(&snap)));
            let result = catch(i, &mut || {
                let mut sys = forked.take().expect("fork consumed once");
                sys.set_fault_config(units[i].config.mesh.faults.clone());
                sys.run()
            });
            finish_unit(i, result, t);
        }
    };

    // Work items are groups of units sharing a warmup; without
    // `--warmup-checkpoint` every unit is its own (classic) group.
    let groups: Vec<Vec<usize>> = if opts.warmup_checkpoint.is_some() {
        group_units(units)
    } else {
        (0..total).map(|i| vec![i]).collect()
    };

    let workers = opts.jobs.clamp(1, groups.len().max(1));
    if workers <= 1 {
        for g in &groups {
            run_group(g);
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    if g >= groups.len() {
                        break;
                    }
                    run_group(&groups[g]);
                });
            }
        });
    }
    if opts.progress {
        eprintln!(
            "[campaign] {total} runs on {workers} worker(s) in {:.2}s",
            started.elapsed().as_secs_f64()
        );
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            // Per-unit catch_unwind fills every slot; an empty one means the
            // group machinery itself failed. Surface it as a typed error —
            // never abort the caller (the pre-fix code died here with an
            // opaque `expect("campaign unit completed")`).
            slot.into_inner().unwrap_or_else(|| {
                let u = &units[i];
                Err(CellError::Panicked {
                    label: u.label.clone(),
                    spec: u.spec.name.to_string(),
                    seed: u.seed,
                    faults: format!("{:?}", u.config.mesh.faults),
                    message: "unit result never landed (worker aborted mid-group)".to_string(),
                })
            })
        })
        .collect()
}

/// Partitions units into checkpoint-sharing groups, preserving unit order
/// within and across groups.
///
/// Two units share a warmup iff they run the same seed, the same workload
/// spec, and configurations that are equal once faults are stripped — the
/// exact precondition for the fork-point fault swap to be sound.
fn group_units(units: &[Unit]) -> Vec<Vec<usize>> {
    fn modulo_faults(config: &SystemConfig) -> SystemConfig {
        let mut c = config.clone();
        c.mesh.faults = FaultConfig::none();
        c
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut keys: Vec<(u64, &WorkloadSpec, SystemConfig)> = Vec::new();
    for (u, unit) in units.iter().enumerate() {
        let stripped = modulo_faults(&unit.config);
        if let Some(g) = keys
            .iter()
            .position(|(s, spec, cfg)| *s == unit.seed && **spec == unit.spec && *cfg == stripped)
        {
            groups[g].push(u);
        } else {
            keys.push((unit.seed, &unit.spec, stripped));
            groups.push(vec![u]);
        }
    }
    groups
}

/// Wall-time and throughput summary of a campaign, for `BENCH_*.json`
/// emission by `scripts/bench.sh`.
#[derive(Debug, Clone)]
pub struct CampaignTiming {
    /// Wall-clock seconds for the whole campaign.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub jobs: usize,
    /// Total simulated cycles across all reports.
    pub simulated_cycles: u64,
    /// Total simulation events processed across all reports.
    pub events: u64,
}

impl CampaignTiming {
    /// Measures `run_campaign` over `cells`.
    pub fn measure(cells: &[Cell], opts: &Campaign) -> (Vec<Vec<SimReport>>, CampaignTiming) {
        let t = Instant::now();
        let results = run_campaign(cells, opts);
        let wall_seconds = t.elapsed().as_secs_f64();
        let flat = results.iter().flatten();
        let timing = CampaignTiming {
            wall_seconds,
            jobs: opts
                .jobs
                .clamp(1, results.iter().map(Vec::len).sum::<usize>().max(1)),
            simulated_cycles: flat.clone().map(|r| r.cycles).sum(),
            events: flat.map(|r| r.events).sum(),
        };
        (results, timing)
    }

    /// Simulated cycles per wall second.
    pub fn cycles_per_second(&self) -> f64 {
        self.simulated_cycles as f64 / self.wall_seconds.max(1e-9)
    }

    /// Simulation events per wall second.
    pub fn events_per_second(&self) -> f64 {
        self.events as f64 / self.wall_seconds.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A spec whose generator panics (empty pattern mix indexes `mix[0]`),
    /// standing in for any mid-cell worker panic.
    fn poisoned_spec() -> WorkloadSpec {
        WorkloadSpec {
            mix: Vec::new(),
            ..WorkloadSpec::named("water-sp").unwrap()
        }
    }

    fn opts(jobs: usize) -> Campaign {
        Campaign {
            jobs,
            progress: false,
            warmup_checkpoint: None,
        }
    }

    #[test]
    fn poisoned_cell_is_caught_and_identified() {
        let good = WorkloadSpec::named("water-sp").unwrap();
        let cells = vec![
            Cell::new("good-a", good.clone(), SystemConfig::ftdircmp(), 1),
            Cell::new("poisoned", poisoned_spec(), SystemConfig::ftdircmp(), 2),
            Cell::new("good-b", good, SystemConfig::ftdircmp(), 1),
        ];
        for jobs in [1, 3] {
            let results = run_campaign_caught(&cells, &opts(jobs));
            assert_eq!(results.len(), 3);
            assert!(results[0][0].is_ok(), "jobs={jobs}");
            assert!(results[2][0].is_ok(), "jobs={jobs}");
            for (seed, r) in results[1].iter().enumerate() {
                match r {
                    Err(CellError::Panicked {
                        label,
                        spec,
                        seed: s,
                        ..
                    }) => {
                        assert_eq!(label, "poisoned");
                        assert_eq!(spec, "water-sp");
                        assert_eq!(*s, seed as u64);
                    }
                    other => panic!("expected Panicked, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn poisoned_warmup_group_falls_back_per_unit() {
        // Both members share a (spec, seed, config-modulo-faults) group; the
        // warmup panics, so each member reports its own typed error.
        let mut faulty = SystemConfig::ftdircmp().with_fault_rate(125.0);
        faulty.watchdog_cycles = 3_000_000;
        let cells = vec![
            Cell::new("p/ff", poisoned_spec(), SystemConfig::ftdircmp(), 1),
            Cell::new("p/ft", poisoned_spec(), faulty, 1),
        ];
        let results = run_campaign_caught(
            &cells,
            &Campaign {
                jobs: 2,
                progress: false,
                warmup_checkpoint: Some(60.0),
            },
        );
        for r in results.iter().flatten() {
            assert!(
                matches!(r, Err(CellError::Panicked { .. })),
                "expected Panicked, got {r:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "campaign unit panicked")]
    fn fallible_path_propagates_panics_with_cell_identity() {
        let cells = vec![Cell::new(
            "poisoned",
            poisoned_spec(),
            SystemConfig::ftdircmp(),
            1,
        )];
        let _ = run_campaign_fallible(&cells, &opts(1));
    }

    #[test]
    fn sparse_unit_list_matches_full_campaign() {
        // Resuming from a sparse unit list must reproduce the exact
        // per-unit results of the full run — the daemon's resume contract.
        let spec = WorkloadSpec::named("water-sp").unwrap();
        let units: Vec<Unit> = (0..3)
            .map(|seed| Unit {
                label: format!("u{seed}"),
                spec: spec.clone(),
                config: SystemConfig::ftdircmp(),
                seed,
            })
            .collect();
        let full = run_units_caught(&units, &opts(1));
        let sparse = run_units_caught(&[units[2].clone(), units[0].clone()], &opts(1));
        assert_eq!(
            full[2].as_ref().unwrap().cycles,
            sparse[0].as_ref().unwrap().cycles
        );
        assert_eq!(
            full[0].as_ref().unwrap().cycles,
            sparse[1].as_ref().unwrap().cycles
        );
    }
}
