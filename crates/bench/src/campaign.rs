//! Parallel deterministic campaign runner.
//!
//! Every figure/table binary sweeps a grid of *(workload spec, system
//! configuration, seed)* cells, and every cell is an independent,
//! fully-deterministic simulation — an embarrassingly parallel campaign.
//! This module fans the cells across a scoped worker pool while keeping the
//! output **byte-identical** to a sequential sweep:
//!
//! * cells are enumerated up front in a deterministic order;
//! * each (cell, seed) unit writes its [`SimReport`] into a pre-indexed
//!   result slot, so aggregation order never depends on thread scheduling;
//! * each unit runs the exact same per-seed construction as
//!   [`crate::run_spec`] (shared helper), so a campaign at `--jobs 1` and at
//!   `--jobs N` produce identical reports.
//!
//! Worker count comes from `--jobs N` on the command line, then the
//! `FTDIRCMP_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! # Checkpoint-fork mode
//!
//! With [`Campaign::warmup_checkpoint`] set (CLI: `--warmup-checkpoint
//! [PCT]`), cells that differ **only in their fault configuration** and run
//! the same workload under the same seed share one fault-free warmup: the
//! runner simulates the common prefix once, takes a
//! [`ftdircmp_core::SystemSnapshot`], and forks every member of the group
//! from the checkpoint with its own faults switched on at the fork point.
//! Because neither the fault-free path nor a `drop_indices` schedule
//! consumes random numbers, a forked run is byte-identical to a from-scratch
//! run whose faults were gated until the same retirement point — and
//! fault-free members stay byte-identical to the classic path. Absolute
//! numbers for *faulty* cells change versus classic mode (faults only start
//! after warmup; see DESIGN.md §8), so the mode is opt-in; with the flag off
//! the runner is byte-identical to the pre-checkpoint implementation.
//!
//! # Example
//!
//! ```
//! use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
//! use ftdircmp_core::SystemConfig;
//! use ftdircmp_workloads::WorkloadSpec;
//!
//! let spec = WorkloadSpec::named("water-sp").unwrap();
//! let cells = vec![
//!     Cell::new("base", spec.clone(), SystemConfig::dircmp(), 2),
//!     Cell::new("ft", spec, SystemConfig::ftdircmp(), 2),
//! ];
//! let opts = Campaign {
//!     jobs: 2,
//!     progress: false,
//!     warmup_checkpoint: None,
//! };
//! let results = run_campaign(&cells, &opts);
//! assert_eq!(results.len(), 2);
//! assert_eq!(results[0].len(), 2); // one report per seed, in seed order
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use ftdircmp_core::{RunError, SimReport, System, SystemConfig};
use ftdircmp_noc::FaultConfig;
use ftdircmp_workloads::WorkloadSpec;

use crate::{expect_coherent, run_seed_fallible};

/// One campaign cell: a workload under a configuration, averaged over
/// `seeds` seeds.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Display label used in progress lines (e.g. `"ocean/ftdircmp-1000"`).
    pub label: String,
    /// Workload to generate.
    pub spec: WorkloadSpec,
    /// System configuration to run it under.
    pub config: SystemConfig,
    /// Number of seeds (reports come back in seed order).
    pub seeds: u64,
}

impl Cell {
    /// Creates a cell.
    pub fn new(
        label: impl Into<String>,
        spec: WorkloadSpec,
        config: SystemConfig,
        seeds: u64,
    ) -> Self {
        Cell {
            label: label.into(),
            spec,
            config,
            seeds,
        }
    }
}

/// Campaign execution options.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Worker threads. `1` runs inline on the calling thread (the
    /// sequential reference path).
    pub jobs: usize,
    /// Print per-unit progress and wall time to stderr.
    pub progress: bool,
    /// Checkpoint-fork warmup threshold, as a percentage of each workload's
    /// memory operations (see the module docs). `None` runs every cell from
    /// scratch (the classic, pre-checkpoint behaviour).
    pub warmup_checkpoint: Option<f64>,
}

impl Campaign {
    /// Options from argv/environment: worker count per [`crate::BenchArgs::jobs`],
    /// checkpoint mode per [`crate::BenchArgs::warmup_checkpoint`], progress on.
    pub fn from_args(args: &crate::BenchArgs) -> Self {
        Campaign {
            jobs: args.jobs(),
            progress: true,
            warmup_checkpoint: args.warmup_checkpoint(),
        }
    }
}

/// Runs every cell of the campaign, panicking (like [`crate::run_spec`]) on
/// any failed or incoherent run.
///
/// Returns one `Vec<SimReport>` per input cell, index-aligned with `cells`
/// and seed-ordered within each cell — identical to calling
/// [`crate::run_spec`] on each cell in order.
///
/// # Panics
///
/// Panics if any run deadlocks or violates a coherence invariant.
pub fn run_campaign(cells: &[Cell], opts: &Campaign) -> Vec<Vec<SimReport>> {
    run_campaign_fallible(cells, opts)
        .into_iter()
        .zip(cells)
        .map(|(results, cell)| {
            results
                .into_iter()
                .enumerate()
                .map(|(seed, r)| expect_coherent(cell.spec.name, seed as u64, r))
                .collect()
        })
        .collect()
}

/// Like [`run_campaign`] but returns `Err` results untouched (used to
/// demonstrate DirCMP's deadlock failure mode).
pub fn run_campaign_fallible(
    cells: &[Cell],
    opts: &Campaign,
) -> Vec<Vec<Result<SimReport, RunError>>> {
    // Deterministic unit order: cells in input order, seeds ascending.
    let units: Vec<(usize, u64)> = cells
        .iter()
        .enumerate()
        .flat_map(|(ci, c)| (0..c.seeds).map(move |s| (ci, s)))
        .collect();
    let slots: Vec<OnceLock<Result<SimReport, RunError>>> =
        units.iter().map(|_| OnceLock::new()).collect();
    let total = units.len();
    let completed = AtomicUsize::new(0);
    let started = Instant::now();

    let note_progress = |i: usize, result: &Result<SimReport, RunError>, t: Instant| {
        if !opts.progress {
            return;
        }
        let (ci, seed) = units[i];
        let n = completed.fetch_add(1, Ordering::Relaxed) + 1;
        let status = match result {
            Ok(r) => format!("{} cycles", r.cycles),
            Err(e) => match e {
                RunError::Deadlock { at, .. } => format!("deadlock at cycle {at}"),
                RunError::InvalidConfig(_) => "invalid config".to_string(),
            },
        };
        eprintln!(
            "[campaign {n}/{total}] {} seed {seed}: {status} in {:.2}s",
            cells[ci].label,
            t.elapsed().as_secs_f64()
        );
    };
    let finish_unit = |i: usize, result: Result<SimReport, RunError>, t: Instant| {
        note_progress(i, &result, t);
        assert!(
            slots[i].set(result).is_ok(),
            "campaign unit {i} computed twice"
        );
    };
    let run_unit_classic = |i: usize| {
        let (ci, seed) = units[i];
        let cell = &cells[ci];
        let t = Instant::now();
        finish_unit(i, run_seed_fallible(&cell.spec, &cell.config, seed), t);
    };
    let run_group = |group: &[usize]| {
        // Singleton groups (and everything when checkpointing is off) take
        // the classic from-scratch path: nothing to share.
        let (Some(pct), [first, rest @ ..]) = (opts.warmup_checkpoint, group) else {
            group.iter().copied().for_each(run_unit_classic);
            return;
        };
        if rest.is_empty() {
            run_unit_classic(*first);
            return;
        }
        // Shared fault-free warmup: identical workload + seed across the
        // group, faults stripped. Neither the fault-free injector path nor a
        // deterministic drop schedule consumes RNG, so swapping each
        // member's faults in at the fork point reproduces a from-scratch run
        // with faults gated until the same retirement count.
        let (ci0, seed) = units[*first];
        let proto = &cells[ci0];
        let wl = proto.spec.generate(proto.config.tiles, 1000 + seed);
        let mut warm_cfg = proto.config.clone().with_seed(1000 + seed);
        warm_cfg.mesh.faults = FaultConfig::none();
        let target = (wl.total_mem_ops() as f64 * (pct.clamp(0.0, 100.0) / 100.0)).ceil() as u64;
        let t_warm = Instant::now();
        let warm = System::new(warm_cfg, &wl).and_then(|mut sys| {
            sys.run_until_retired(target)?;
            Ok(sys)
        });
        let Ok(sys) = warm else {
            // The fault-free prefix itself failed (deadlock or invalid
            // config): fall back to full runs so each member reports its
            // own error through the unchanged classic path.
            group.iter().copied().for_each(run_unit_classic);
            return;
        };
        if opts.progress {
            eprintln!(
                "[campaign] warmup {} seed {seed}: {target} mem ops shared by {} cells in {:.2}s",
                proto.label,
                group.len(),
                t_warm.elapsed().as_secs_f64()
            );
        }
        let snap = sys.snapshot();
        let mut warm = Some(sys);
        for &i in group {
            let (ci, _) = units[i];
            let t = Instant::now();
            let mut forked = warm.take().unwrap_or_else(|| System::restore(&snap));
            forked.set_fault_config(cells[ci].config.mesh.faults.clone());
            finish_unit(i, forked.run(), t);
        }
    };

    // Work items are groups of units sharing a warmup; without
    // `--warmup-checkpoint` every unit is its own (classic) group.
    let groups: Vec<Vec<usize>> = if opts.warmup_checkpoint.is_some() {
        group_units(cells, &units)
    } else {
        (0..total).map(|i| vec![i]).collect()
    };

    let workers = opts.jobs.clamp(1, groups.len().max(1));
    if workers <= 1 {
        for g in &groups {
            run_group(g);
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    if g >= groups.len() {
                        break;
                    }
                    run_group(&groups[g]);
                });
            }
        });
    }
    if opts.progress {
        eprintln!(
            "[campaign] {total} runs on {workers} worker(s) in {:.2}s",
            started.elapsed().as_secs_f64()
        );
    }

    // Reassemble into the pre-indexed shape: results[cell][seed].
    let mut results: Vec<Vec<Result<SimReport, RunError>>> = cells
        .iter()
        .map(|c| Vec::with_capacity(c.seeds as usize))
        .collect();
    for (slot, &(ci, _)) in slots.into_iter().zip(&units) {
        results[ci].push(slot.into_inner().expect("campaign unit completed"));
    }
    results
}

/// Partitions units into checkpoint-sharing groups, preserving unit order
/// within and across groups.
///
/// Two units share a warmup iff they run the same seed, the same workload
/// spec, and configurations that are equal once faults are stripped — the
/// exact precondition for the fork-point fault swap to be sound.
fn group_units(cells: &[Cell], units: &[(usize, u64)]) -> Vec<Vec<usize>> {
    fn modulo_faults(config: &SystemConfig) -> SystemConfig {
        let mut c = config.clone();
        c.mesh.faults = FaultConfig::none();
        c
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut keys: Vec<(u64, &WorkloadSpec, SystemConfig)> = Vec::new();
    for (u, &(ci, seed)) in units.iter().enumerate() {
        let cell = &cells[ci];
        let stripped = modulo_faults(&cell.config);
        if let Some(g) = keys
            .iter()
            .position(|(s, spec, cfg)| *s == seed && **spec == cell.spec && *cfg == stripped)
        {
            groups[g].push(u);
        } else {
            keys.push((seed, &cell.spec, stripped));
            groups.push(vec![u]);
        }
    }
    groups
}

/// Wall-time and throughput summary of a campaign, for `BENCH_*.json`
/// emission by `scripts/bench.sh`.
#[derive(Debug, Clone)]
pub struct CampaignTiming {
    /// Wall-clock seconds for the whole campaign.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub jobs: usize,
    /// Total simulated cycles across all reports.
    pub simulated_cycles: u64,
    /// Total simulation events processed across all reports.
    pub events: u64,
}

impl CampaignTiming {
    /// Measures `run_campaign` over `cells`.
    pub fn measure(cells: &[Cell], opts: &Campaign) -> (Vec<Vec<SimReport>>, CampaignTiming) {
        let t = Instant::now();
        let results = run_campaign(cells, opts);
        let wall_seconds = t.elapsed().as_secs_f64();
        let flat = results.iter().flatten();
        let timing = CampaignTiming {
            wall_seconds,
            jobs: opts
                .jobs
                .clamp(1, results.iter().map(Vec::len).sum::<usize>().max(1)),
            simulated_cycles: flat.clone().map(|r| r.cycles).sum(),
            events: flat.map(|r| r.events).sum(),
        };
        (results, timing)
    }

    /// Simulated cycles per wall second.
    pub fn cycles_per_second(&self) -> f64 {
        self.simulated_cycles as f64 / self.wall_seconds.max(1e-9)
    }

    /// Simulation events per wall second.
    pub fn events_per_second(&self) -> f64 {
        self.events as f64 / self.wall_seconds.max(1e-9)
    }
}
