//! Parallel deterministic campaign runner.
//!
//! Every figure/table binary sweeps a grid of *(workload spec, system
//! configuration, seed)* cells, and every cell is an independent,
//! fully-deterministic simulation — an embarrassingly parallel campaign.
//! This module fans the cells across a scoped worker pool while keeping the
//! output **byte-identical** to a sequential sweep:
//!
//! * cells are enumerated up front in a deterministic order;
//! * each (cell, seed) unit writes its [`SimReport`] into a pre-indexed
//!   result slot, so aggregation order never depends on thread scheduling;
//! * each unit runs the exact same per-seed construction as
//!   [`crate::run_spec`] (shared helper), so a campaign at `--jobs 1` and at
//!   `--jobs N` produce identical reports.
//!
//! Worker count comes from `--jobs N` on the command line, then the
//! `FTDIRCMP_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
//! use ftdircmp_core::SystemConfig;
//! use ftdircmp_workloads::WorkloadSpec;
//!
//! let spec = WorkloadSpec::named("water-sp").unwrap();
//! let cells = vec![
//!     Cell::new("base", spec.clone(), SystemConfig::dircmp(), 2),
//!     Cell::new("ft", spec, SystemConfig::ftdircmp(), 2),
//! ];
//! let results = run_campaign(&cells, &Campaign { jobs: 2, progress: false });
//! assert_eq!(results.len(), 2);
//! assert_eq!(results[0].len(), 2); // one report per seed, in seed order
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use ftdircmp_core::{RunError, SimReport, SystemConfig};
use ftdircmp_workloads::WorkloadSpec;

use crate::{expect_coherent, run_seed_fallible};

/// One campaign cell: a workload under a configuration, averaged over
/// `seeds` seeds.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Display label used in progress lines (e.g. `"ocean/ftdircmp-1000"`).
    pub label: String,
    /// Workload to generate.
    pub spec: WorkloadSpec,
    /// System configuration to run it under.
    pub config: SystemConfig,
    /// Number of seeds (reports come back in seed order).
    pub seeds: u64,
}

impl Cell {
    /// Creates a cell.
    pub fn new(
        label: impl Into<String>,
        spec: WorkloadSpec,
        config: SystemConfig,
        seeds: u64,
    ) -> Self {
        Cell {
            label: label.into(),
            spec,
            config,
            seeds,
        }
    }
}

/// Campaign execution options.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Worker threads. `1` runs inline on the calling thread (the
    /// sequential reference path).
    pub jobs: usize,
    /// Print per-unit progress and wall time to stderr.
    pub progress: bool,
}

impl Campaign {
    /// Options from argv/environment: worker count per [`crate::BenchArgs::jobs`],
    /// progress on.
    pub fn from_args(args: &crate::BenchArgs) -> Self {
        Campaign {
            jobs: args.jobs(),
            progress: true,
        }
    }
}

/// Runs every cell of the campaign, panicking (like [`crate::run_spec`]) on
/// any failed or incoherent run.
///
/// Returns one `Vec<SimReport>` per input cell, index-aligned with `cells`
/// and seed-ordered within each cell — identical to calling
/// [`crate::run_spec`] on each cell in order.
///
/// # Panics
///
/// Panics if any run deadlocks or violates a coherence invariant.
pub fn run_campaign(cells: &[Cell], opts: &Campaign) -> Vec<Vec<SimReport>> {
    run_campaign_fallible(cells, opts)
        .into_iter()
        .zip(cells)
        .map(|(results, cell)| {
            results
                .into_iter()
                .enumerate()
                .map(|(seed, r)| expect_coherent(cell.spec.name, seed as u64, r))
                .collect()
        })
        .collect()
}

/// Like [`run_campaign`] but returns `Err` results untouched (used to
/// demonstrate DirCMP's deadlock failure mode).
pub fn run_campaign_fallible(
    cells: &[Cell],
    opts: &Campaign,
) -> Vec<Vec<Result<SimReport, RunError>>> {
    // Deterministic unit order: cells in input order, seeds ascending.
    let units: Vec<(usize, u64)> = cells
        .iter()
        .enumerate()
        .flat_map(|(ci, c)| (0..c.seeds).map(move |s| (ci, s)))
        .collect();
    let slots: Vec<OnceLock<Result<SimReport, RunError>>> =
        units.iter().map(|_| OnceLock::new()).collect();
    let total = units.len();
    let completed = AtomicUsize::new(0);
    let started = Instant::now();

    let run_unit = |i: usize| {
        let (ci, seed) = units[i];
        let cell = &cells[ci];
        let t = Instant::now();
        let result = run_seed_fallible(&cell.spec, &cell.config, seed);
        if opts.progress {
            let n = completed.fetch_add(1, Ordering::Relaxed) + 1;
            let status = match &result {
                Ok(r) => format!("{} cycles", r.cycles),
                Err(e) => match e {
                    RunError::Deadlock { at, .. } => format!("deadlock at cycle {at}"),
                    RunError::InvalidConfig(_) => "invalid config".to_string(),
                },
            };
            eprintln!(
                "[campaign {n}/{total}] {} seed {seed}: {status} in {:.2}s",
                cell.label,
                t.elapsed().as_secs_f64()
            );
        }
        assert!(
            slots[i].set(result).is_ok(),
            "campaign unit {i} computed twice"
        );
    };

    let workers = opts.jobs.clamp(1, total.max(1));
    if workers <= 1 {
        (0..total).for_each(run_unit);
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    run_unit(i);
                });
            }
        });
    }
    if opts.progress {
        eprintln!(
            "[campaign] {total} runs on {workers} worker(s) in {:.2}s",
            started.elapsed().as_secs_f64()
        );
    }

    // Reassemble into the pre-indexed shape: results[cell][seed].
    let mut results: Vec<Vec<Result<SimReport, RunError>>> = cells
        .iter()
        .map(|c| Vec::with_capacity(c.seeds as usize))
        .collect();
    for (slot, &(ci, _)) in slots.into_iter().zip(&units) {
        results[ci].push(slot.into_inner().expect("campaign unit completed"));
    }
    results
}

/// Wall-time and throughput summary of a campaign, for `BENCH_*.json`
/// emission by `scripts/bench.sh`.
#[derive(Debug, Clone)]
pub struct CampaignTiming {
    /// Wall-clock seconds for the whole campaign.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub jobs: usize,
    /// Total simulated cycles across all reports.
    pub simulated_cycles: u64,
    /// Total simulation events processed across all reports.
    pub events: u64,
}

impl CampaignTiming {
    /// Measures `run_campaign` over `cells`.
    pub fn measure(cells: &[Cell], opts: &Campaign) -> (Vec<Vec<SimReport>>, CampaignTiming) {
        let t = Instant::now();
        let results = run_campaign(cells, opts);
        let wall_seconds = t.elapsed().as_secs_f64();
        let flat = results.iter().flatten();
        let timing = CampaignTiming {
            wall_seconds,
            jobs: opts
                .jobs
                .clamp(1, results.iter().map(Vec::len).sum::<usize>().max(1)),
            simulated_cycles: flat.clone().map(|r| r.cycles).sum(),
            events: flat.map(|r| r.events).sum(),
        };
        (results, timing)
    }

    /// Simulated cycles per wall second.
    pub fn cycles_per_second(&self) -> f64 {
        self.simulated_cycles as f64 / self.wall_seconds.max(1e-9)
    }

    /// Simulation events per wall second.
    pub fn events_per_second(&self) -> f64 {
        self.events as f64 / self.wall_seconds.max(1e-9)
    }
}
