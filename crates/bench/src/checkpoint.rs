//! Analytical checkpoint/rollback comparator (paper §5).
//!
//! The paper argues qualitatively that checkpoint-based fault tolerance
//! (ReVive, SafetyNet) pays overhead in the fault-free case while FtDirCMP
//! does not. This module makes that comparison quantitative with the
//! classic Young/Daly model of checkpoint-restart systems:
//!
//! * a checkpoint costs `checkpoint_cost` cycles (flushing dirty state) and
//!   is taken every `interval` cycles;
//! * a fault detected `detection_latency` cycles after it happens rolls the
//!   machine back to the last checkpoint, losing on average half an
//!   interval of work plus the detection latency and a restore cost.
//!
//! Expected relative execution time:
//!
//! ```text
//! T/T0 = 1 + cost/interval + rate * (interval/2 + detection + restore)
//! ```
//!
//! minimized at the Young interval `sqrt(2 * cost / rate)`. The
//! `ext_checkpoint_comparison` binary evaluates this at the optimum for the
//! fault rates of Figure 3 and puts it next to FtDirCMP's *measured*
//! overhead.

/// Parameters of the checkpoint/rollback machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointModel {
    /// Cycles to take one checkpoint (flush dirty lines, quiesce).
    pub checkpoint_cost: f64,
    /// Cycles from fault occurrence to detection (rollback distance adds
    /// this on top of the lost interval fraction).
    pub detection_latency: f64,
    /// Cycles to restore the last checkpoint after detection.
    pub restore_cost: f64,
}

impl Default for CheckpointModel {
    fn default() -> Self {
        // Flushing a few hundred dirty lines through 4 memory controllers
        // at 160 cycles each, pipelined: order 10k cycles. Detection via
        // timeouts comparable to FtDirCMP's. Restore ≈ checkpoint.
        CheckpointModel {
            checkpoint_cost: 10_000.0,
            detection_latency: 3_000.0,
            restore_cost: 10_000.0,
        }
    }
}

impl CheckpointModel {
    /// Expected relative execution time for a given checkpoint `interval`
    /// (cycles) and `fault_rate` (faults per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn relative_time(&self, interval: f64, fault_rate: f64) -> f64 {
        assert!(interval > 0.0, "interval must be positive");
        1.0 + self.checkpoint_cost / interval
            + fault_rate * (interval / 2.0 + self.detection_latency + self.restore_cost)
    }

    /// The Young-optimal checkpoint interval for `fault_rate` (faults per
    /// cycle); unbounded (no checkpoints pay off) when the rate is zero.
    pub fn optimal_interval(&self, fault_rate: f64) -> f64 {
        if fault_rate <= 0.0 {
            f64::INFINITY
        } else {
            (2.0 * self.checkpoint_cost / fault_rate).sqrt()
        }
    }

    /// Expected relative execution time at the optimal interval.
    pub fn optimal_relative_time(&self, fault_rate: f64) -> f64 {
        if fault_rate <= 0.0 {
            // No faults: the rational choice is to never checkpoint…
            // except a real deployment cannot know that, so report the
            // cost at a "safe" long interval of 10x the checkpoint cost.
            return self.relative_time(10.0 * self.checkpoint_cost.max(1.0), 0.0);
        }
        self.relative_time(self.optimal_interval(fault_rate), fault_rate)
    }
}

/// Converts a Figure 3 fault rate (lost messages per million) into faults
/// per cycle, given a run's observed message throughput.
pub fn rate_per_cycle(lost_per_million: f64, messages: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let msgs_per_cycle = messages as f64 / cycles as f64;
    (lost_per_million / 1_000_000.0) * msgs_per_cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_overhead_is_pure_checkpoint_cost() {
        let m = CheckpointModel::default();
        let t = m.relative_time(100_000.0, 0.0);
        assert!((t - 1.1).abs() < 1e-9, "10k/100k = 10% overhead, got {t}");
    }

    #[test]
    fn optimal_interval_follows_young_formula() {
        let m = CheckpointModel {
            checkpoint_cost: 8.0,
            detection_latency: 0.0,
            restore_cost: 0.0,
        };
        let rate = 1e-6;
        let opt = m.optimal_interval(rate);
        assert!((opt - (16.0f64 / 1e-6).sqrt()).abs() < 1e-6);
        // The optimum beats nearby intervals.
        let best = m.relative_time(opt, rate);
        assert!(best <= m.relative_time(opt * 0.5, rate));
        assert!(best <= m.relative_time(opt * 2.0, rate));
    }

    #[test]
    fn overhead_grows_with_fault_rate() {
        let m = CheckpointModel::default();
        let lo = m.optimal_relative_time(1e-8);
        let hi = m.optimal_relative_time(1e-5);
        assert!(hi > lo && lo > 1.0);
    }

    #[test]
    fn zero_rate_has_finite_safe_interval_cost() {
        let m = CheckpointModel::default();
        let t = m.optimal_relative_time(0.0);
        // Safe interval = 10x the cost => exactly 10% residual overhead.
        assert!(
            (t - 1.1).abs() < 1e-9,
            "long-interval residual cost, got {t}"
        );
    }

    #[test]
    fn rate_conversion() {
        // 1000 lost/M at 0.5 messages per cycle = 5e-4 lost per 1e3 cycles.
        let r = rate_per_cycle(1000.0, 50_000, 100_000);
        assert!((r - 0.0005).abs() < 1e-12);
        assert_eq!(rate_per_cycle(1000.0, 1, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        CheckpointModel::default().relative_time(0.0, 1e-6);
    }
}
