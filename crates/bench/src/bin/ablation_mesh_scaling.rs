//! Scalability ablation: how FtDirCMP's overhead behaves as the CMP grows
//! (paper §1 motivates directory protocols by their scalability; this sweep
//! confirms the fault-tolerance overhead does not grow with the mesh).
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ablation_mesh_scaling [-- --seeds N --jobs N]
//! ```

use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
use ftdircmp_bench::{geomean_ratio, BenchArgs, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::{signed_percent, times, Table};
use ftdircmp_workloads::WorkloadSpec;

const MESHES: [(u16, u16); 4] = [(2, 2), (4, 2), (4, 4), (8, 4)];

fn main() {
    let args = BenchArgs::parse();
    let seeds = args.u64_flag("--seeds", DEFAULT_SEEDS);
    let spec = WorkloadSpec::named("ocean").expect("in suite");
    println!(
        "Scalability ablation: FtDirCMP overhead vs. mesh size\n\
         (benchmark {}, {seeds} seeds per cell).\n",
        spec.name
    );

    // Two cells per mesh size: DirCMP baseline then FtDirCMP.
    let mut cells = Vec::new();
    for (w, hgt) in MESHES {
        cells.push(Cell::new(
            format!("{}/{w}x{hgt}-dircmp", spec.name),
            spec.clone(),
            SystemConfig::dircmp().with_mesh(w, hgt),
            seeds,
        ));
        cells.push(Cell::new(
            format!("{}/{w}x{hgt}-ftdircmp", spec.name),
            spec.clone(),
            SystemConfig::ftdircmp().with_mesh(w, hgt),
            seeds,
        ));
    }
    let results = run_campaign(&cells, &Campaign::from_args(&args));

    let mut t = Table::with_columns(&[
        "mesh",
        "cores",
        "exec. time overhead",
        "message overhead",
        "byte overhead",
    ]);
    for (mi, (w, hgt)) in MESHES.iter().enumerate() {
        let base = &results[mi * 2];
        let ft = &results[mi * 2 + 1];
        let time = geomean_ratio(ft, base, |r| r.cycles as f64);
        let msgs = geomean_ratio(ft, base, |r| r.stats.total_messages() as f64) - 1.0;
        let bytes = geomean_ratio(ft, base, |r| r.stats.total_bytes() as f64) - 1.0;
        t.row(vec![
            format!("{w}x{hgt}"),
            (u32::from(*w) * u32::from(*hgt)).to_string(),
            times(time),
            signed_percent(msgs),
            signed_percent(bytes),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape to observe: the ownership-acknowledgment overhead is per-transfer,\n\
         so it stays flat as the system scales — the scalability argument for\n\
         attaching fault tolerance to a directory protocol (paper §1/§5)."
    );
}
