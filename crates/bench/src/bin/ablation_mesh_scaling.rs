//! Scalability ablation: how FtDirCMP's overhead behaves as the CMP grows
//! (paper §1 motivates directory protocols by their scalability; this sweep
//! confirms the fault-tolerance overhead does not grow with the mesh).
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ablation_mesh_scaling [-- --seeds N]
//! ```

use ftdircmp_bench::{arg_u64, geomean_ratio, run_spec, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::{signed_percent, times, Table};
use ftdircmp_workloads::WorkloadSpec;

const MESHES: [(u16, u16); 4] = [(2, 2), (4, 2), (4, 4), (8, 4)];

fn main() {
    let seeds = arg_u64("--seeds", DEFAULT_SEEDS);
    let spec = WorkloadSpec::named("ocean").expect("in suite");
    println!(
        "Scalability ablation: FtDirCMP overhead vs. mesh size\n\
         (benchmark {}, {seeds} seeds per cell).\n",
        spec.name
    );
    let mut t = Table::with_columns(&[
        "mesh",
        "cores",
        "exec. time overhead",
        "message overhead",
        "byte overhead",
    ]);
    for (w, hgt) in MESHES {
        let base_cfg = SystemConfig::dircmp().with_mesh(w, hgt);
        let ft_cfg = SystemConfig::ftdircmp().with_mesh(w, hgt);
        let base = run_spec(&spec, &base_cfg, seeds);
        let ft = run_spec(&spec, &ft_cfg, seeds);
        let time = geomean_ratio(&ft, &base, |r| r.cycles as f64);
        let msgs = geomean_ratio(&ft, &base, |r| r.stats.total_messages() as f64) - 1.0;
        let bytes = geomean_ratio(&ft, &base, |r| r.stats.total_bytes() as f64) - 1.0;
        t.row(vec![
            format!("{w}x{hgt}"),
            (u32::from(w) * u32::from(hgt)).to_string(),
            times(time),
            signed_percent(msgs),
            signed_percent(bytes),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape to observe: the ownership-acknowledgment overhead is per-transfer,\n\
         so it stays flat as the system scales — the scalability argument for\n\
         attaching fault tolerance to a directory protocol (paper §1/§5)."
    );
}
