//! Experiment E9 — ablation of the fault-detection timeout values
//! (the trade-off the paper discusses in §4.2: "shortening the fault
//! detection timeouts can reduce performance degradation when faults happen
//! but at the risk of increasing the number of false positives").
//!
//! Sweeps the lost-request/lost-unblock timeout base across a fault-free
//! and a faulty network and reports execution time, false positives and
//! recovery traffic.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ablation_timeouts [-- --seeds N]
//! ```

use ftdircmp_bench::{geomean_ratio, mean, run_spec, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::{times, Table};
use ftdircmp_workloads::WorkloadSpec;

const TIMEOUTS: [u64; 6] = [300, 600, 1200, 2400, 4800, 9600];

fn sweep(spec: &WorkloadSpec, rate: f64, seeds: u64) {
    println!("benchmark {} at {rate:.0} lost msgs/million:\n", spec.name);
    let baseline = run_spec(spec, &SystemConfig::ftdircmp(), seeds);
    let mut t = Table::with_columns(&[
        "timeout base",
        "rel. exec. time",
        "timeouts fired",
        "false positives",
        "ping msgs",
    ]);
    for timeout in TIMEOUTS {
        let mut cfg = SystemConfig::ftdircmp().with_fault_rate(rate);
        cfg.ft.lost_request_timeout = timeout;
        cfg.ft.lost_unblock_timeout = timeout;
        cfg.ft.lost_ackbd_timeout = (timeout * 2 / 3).max(50);
        cfg.ft.lost_data_timeout = timeout * 2;
        cfg.watchdog_cycles = 4_000_000;
        let runs = run_spec(spec, &cfg, seeds);
        t.row(vec![
            format!("{timeout}"),
            times(geomean_ratio(&runs, &baseline, |r| r.cycles as f64)),
            format!("{:.0}", mean(&runs, |r| r.stats.total_timeouts() as f64)),
            format!(
                "{:.0}",
                mean(&runs, |r| r.stats.false_positives.get() as f64)
            ),
            format!(
                "{:.0}",
                mean(&runs, |r| {
                    r.stats.messages_by_class(ftdircmp_noc::VcClass::Ping) as f64
                })
            ),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    let seeds = ftdircmp_bench::arg_u64("--seeds", DEFAULT_SEEDS);
    println!(
        "Ablation E9: fault-detection timeout length vs. performance and false\n\
         positives (relative to the default-timeout fault-free run).\n"
    );
    let spec = WorkloadSpec::named("unstructured").expect("in suite");
    sweep(&spec, 0.0, seeds);
    sweep(&spec, 1000.0, seeds);
    println!(
        "Shape to observe (paper §4.2): with faults, short timeouts recover\n\
         faster but below the service latency they only add false positives;\n\
         very long timeouts leave cores blocked longer per fault."
    );
}
