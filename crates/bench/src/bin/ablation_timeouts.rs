//! Experiment E9 — ablation of the fault-detection timeout values
//! (the trade-off the paper discusses in §4.2: "shortening the fault
//! detection timeouts can reduce performance degradation when faults happen
//! but at the risk of increasing the number of false positives").
//!
//! Sweeps the lost-request/lost-unblock timeout base across a fault-free
//! and a faulty network and reports execution time, false positives and
//! recovery traffic.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ablation_timeouts [-- --seeds N --jobs N]
//! ```

use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
use ftdircmp_bench::{geomean_ratio, mean, BenchArgs, DEFAULT_SEEDS};
use ftdircmp_core::{SimReport, SystemConfig};
use ftdircmp_stats::table::{times, Table};
use ftdircmp_workloads::WorkloadSpec;

const TIMEOUTS: [u64; 6] = [300, 600, 1200, 2400, 4800, 9600];
const RATES: [f64; 2] = [0.0, 1000.0];

fn timeout_config(rate: f64, timeout: u64) -> SystemConfig {
    let mut cfg = SystemConfig::ftdircmp().with_fault_rate(rate);
    cfg.ft.lost_request_timeout = timeout;
    cfg.ft.lost_unblock_timeout = timeout;
    cfg.ft.lost_ackbd_timeout = (timeout * 2 / 3).max(50);
    cfg.ft.lost_data_timeout = timeout * 2;
    cfg.watchdog_cycles = 4_000_000;
    cfg
}

fn render(spec: &WorkloadSpec, rate: f64, baseline: &[SimReport], sweeps: &[Vec<SimReport>]) {
    println!("benchmark {} at {rate:.0} lost msgs/million:\n", spec.name);
    let mut t = Table::with_columns(&[
        "timeout base",
        "rel. exec. time",
        "timeouts fired",
        "false positives",
        "ping msgs",
    ]);
    for (timeout, runs) in TIMEOUTS.iter().zip(sweeps) {
        t.row(vec![
            format!("{timeout}"),
            times(geomean_ratio(runs, baseline, |r| r.cycles as f64)),
            format!("{:.0}", mean(runs, |r| r.stats.total_timeouts() as f64)),
            format!(
                "{:.0}",
                mean(runs, |r| r.stats.false_positives.get() as f64)
            ),
            format!(
                "{:.0}",
                mean(runs, |r| {
                    r.stats.messages_by_class(ftdircmp_noc::VcClass::Ping) as f64
                })
            ),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    let args = BenchArgs::parse();
    let seeds = args.u64_flag("--seeds", DEFAULT_SEEDS);
    println!(
        "Ablation E9: fault-detection timeout length vs. performance and false\n\
         positives (relative to the default-timeout fault-free run).\n"
    );
    let spec = WorkloadSpec::named("unstructured").expect("in suite");

    // Per rate: one default-timeout baseline cell plus one cell per timeout.
    let mut cells = Vec::new();
    for rate in RATES {
        cells.push(Cell::new(
            format!("{}/baseline-{rate:.0}", spec.name),
            spec.clone(),
            SystemConfig::ftdircmp(),
            seeds,
        ));
        for timeout in TIMEOUTS {
            cells.push(Cell::new(
                format!("{}/t{timeout}-{rate:.0}", spec.name),
                spec.clone(),
                timeout_config(rate, timeout),
                seeds,
            ));
        }
    }
    let results = run_campaign(&cells, &Campaign::from_args(&args));

    let cols = 1 + TIMEOUTS.len();
    for (ri, rate) in RATES.iter().enumerate() {
        let baseline = &results[ri * cols];
        let sweeps = &results[ri * cols + 1..(ri + 1) * cols];
        render(&spec, *rate, baseline, sweeps);
    }
    println!(
        "Shape to observe (paper §4.2): with faults, short timeouts recover\n\
         faster but below the service latency they only add false positives;\n\
         very long timeouts leave cores blocked longer per fault."
    );
}
