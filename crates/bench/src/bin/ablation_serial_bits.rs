//! Experiment E10 — ablation of the request-serial-number width (paper
//! §3.5: with `n` bits, a request must be reissued `2^n` times before a
//! stale response could be accepted; Table 4 uses 8 bits).
//!
//! Sweeps the width under a faulty network and reports recovery behaviour
//! and the observed maximum reissue chain, showing how much margin each
//! width leaves.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ablation_serial_bits [-- --seeds N --jobs N]
//! ```

use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
use ftdircmp_bench::{mean, BenchArgs, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::Table;
use ftdircmp_workloads::WorkloadSpec;

const BITS: [u8; 6] = [2, 3, 4, 6, 8, 12];

fn main() {
    let args = BenchArgs::parse();
    let seeds = args.u64_flag("--seeds", DEFAULT_SEEDS);
    let rate = 2000.0;
    let spec = WorkloadSpec::named("barnes").expect("in suite");
    println!(
        "Ablation E10: serial number width under {rate:.0} lost msgs/million\n\
         (benchmark {}, {seeds} seeds per row).\n",
        spec.name
    );

    let cells: Vec<Cell> = BITS
        .iter()
        .map(|&bits| {
            let mut cfg = SystemConfig::ftdircmp().with_fault_rate(rate);
            cfg.ft.serial_bits = bits;
            cfg.watchdog_cycles = 4_000_000;
            Cell::new(
                format!("{}/bits-{bits}", spec.name),
                spec.clone(),
                cfg,
                seeds,
            )
        })
        .collect();
    let results = run_campaign(&cells, &Campaign::from_args(&args));

    let mut t = Table::with_columns(&[
        "serial bits",
        "wrap after",
        "reissues (total)",
        "stale discards",
        "exec cycles",
    ]);
    for (bits, runs) in BITS.iter().zip(&results) {
        t.row(vec![
            bits.to_string(),
            format!("{} reissues", 1u32 << bits),
            format!("{:.0}", mean(runs, |r| r.stats.reissues.get() as f64)),
            format!("{:.0}", mean(runs, |r| r.stats.stale_discards.get() as f64)),
            format!("{:.0}", mean(runs, |r| r.cycles as f64)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "All widths behave identically here because exponential backoff keeps\n\
         reissue chains far below 2^n. The paper's 8-bit choice (Table 4) buys\n\
         256 reissues of margin; widths at or below log2(max chain) would risk\n\
         accepting a stale response (the incoherence of Figure 2)."
    );
}
