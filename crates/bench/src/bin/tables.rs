//! Regenerates the paper's Tables 1–4 from the implementation itself
//! (experiments E1–E4): the message vocabularies, the timeout summary, and
//! the simulated architecture parameters.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin tables [-- --table N]
//! ```

use ftdircmp_core::{MsgType, SystemConfig, TimeoutKind};
use ftdircmp_stats::table::Table;

fn table1() {
    println!("Table 1. Message types used by DirCMP.\n");
    let mut t = Table::with_columns(&["Type", "Description"]);
    for m in MsgType::ALL.iter().filter(|m| !m.is_ft_only()) {
        t.row(vec![m.name().into(), m.description().into()]);
    }
    println!("{}", t.render());
}

fn table2() {
    println!("Table 2. New message types for FtDirCMP.\n");
    let mut t = Table::with_columns(&["Type", "Description"]);
    for m in MsgType::ALL.iter().filter(|m| m.is_ft_only()) {
        t.row(vec![m.name().into(), m.description().into()]);
    }
    println!("{}", t.render());
}

fn table3() {
    println!("Table 3. Timeouts summary.\n");
    let cfg = SystemConfig::default();
    let mut t = Table::with_columns(&[
        "Timeout",
        "Activated",
        "Where",
        "Deactivated",
        "On trigger",
        "Default (cycles)",
    ]);
    let rows: [(&TimeoutKind, [&str; 4], u64); 4] = [
        (
            &TimeoutKind::LostRequest,
            [
                "When a request is issued.",
                "At the requesting L1 (or L2 for memory-facing requests).",
                "When the request is satisfied.",
                "The request is reissued with a new serial number.",
            ],
            cfg.ft.lost_request_timeout,
        ),
        (
            &TimeoutKind::LostUnblock,
            [
                "When a request is answered (even writeback requests).",
                "At the responding L2 or memory.",
                "When the unblock (or writeback) message is received.",
                "An UnblockPing/WbPing is sent to the cache that should have sent it.",
            ],
            cfg.ft.lost_unblock_timeout,
        ),
        (
            &TimeoutKind::LostAckBd,
            [
                "When the AckO message is sent.",
                "At the node that sends the AckO.",
                "When the AckBD message is received.",
                "The AckO is reissued with a new serial number.",
            ],
            cfg.ft.lost_ackbd_timeout,
        ),
        (
            &TimeoutKind::LostData,
            [
                "When a node enters backup state (extension; DESIGN.md §4).",
                "At the backup holder.",
                "When the backup is deleted (AckO received).",
                "An OwnershipPing is sent to the data's destination.",
            ],
            cfg.ft.lost_data_timeout,
        ),
    ];
    for (kind, cols, cycles) in rows {
        t.row(vec![
            kind.label().into(),
            cols[0].into(),
            cols[1].into(),
            cols[2].into(),
            cols[3].into(),
            cycles.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn table4() {
    println!("Table 4. Characteristics of simulated architectures.\n");
    let c = SystemConfig::default();
    let mut t = Table::with_columns(&["Parameter", "Value"]);
    let rows: Vec<(&str, String)> = vec![
        ("Tiles (cores / L1s / L2 banks)", c.tiles.to_string()),
        ("Cache line size", format!("{} bytes", c.line_bytes)),
        (
            "L1 cache",
            format!(
                "{} KB, {}-way, {}-cycle hit",
                c.l1_bytes / 1024,
                c.l1_assoc,
                c.l1_hit_cycles
            ),
        ),
        (
            "Shared L2 cache (per bank)",
            format!(
                "{} KB, {}-way, {}-cycle hit ({} MB total)",
                c.l2_bank_bytes / 1024,
                c.l2_assoc,
                c.l2_hit_cycles,
                c.l2_bank_bytes * u64::from(c.tiles) / (1024 * 1024)
            ),
        ),
        ("Memory access time", format!("{} cycles", c.mem_cycles)),
        ("Memory interleaving", format!("{}-way", c.mem_controllers)),
        (
            "Topology",
            format!(
                "{}x{} 2D mesh, dimension-ordered routing",
                c.mesh.width, c.mesh.height
            ),
        ),
        (
            "Non-data message size",
            format!("{} bytes", c.control_msg_bytes),
        ),
        ("Data message size", format!("{} bytes", c.data_msg_bytes)),
        (
            "Channel bandwidth",
            format!("{} bytes/cycle per link", c.mesh.link_bytes_per_cycle),
        ),
        (
            "Router latency",
            format!("{} cycles/hop", c.mesh.router_latency),
        ),
        (
            "Lost request timeout",
            format!("{} cycles", c.ft.lost_request_timeout),
        ),
        (
            "Lost unblock timeout",
            format!("{} cycles", c.ft.lost_unblock_timeout),
        ),
        (
            "Lost backup deletion acknowledgment",
            format!("{} cycles", c.ft.lost_ackbd_timeout),
        ),
        (
            "Request serial number size",
            format!("{} bits", c.ft.serial_bits),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v]);
    }
    println!("{}", t.render());
}

fn main() {
    let which = ftdircmp_bench::BenchArgs::parse().u64_flag("--table", 0);
    match which {
        1 => table1(),
        2 => table2(),
        3 => table3(),
        4 => table4(),
        _ => {
            table1();
            table2();
            table3();
            table4();
        }
    }
}
