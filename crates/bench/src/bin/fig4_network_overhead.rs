//! Experiment E8 — regenerates the paper's **Figure 4**: relative network
//! overhead of FtDirCMP over DirCMP in the fault-free case, measured in
//! messages and in bytes, categorized by message class.
//!
//! The paper's results this reproduces: ≈ +30% messages on average,
//! dropping to ≈ +10% in bytes, with the entire overhead in the
//! ownership-acknowledgment category.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin fig4_network_overhead [-- --seeds N --jobs N]
//! ```

use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
use ftdircmp_bench::{benchmarks, mean, BenchArgs, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_noc::VcClass;
use ftdircmp_stats::table::{signed_percent, Table};

fn main() {
    let args = BenchArgs::parse();
    let seeds = args.u64_flag("--seeds", DEFAULT_SEEDS);
    println!(
        "Figure 4. Network overhead of FtDirCMP compared to DirCMP without faults\n\
         ({seeds} seeds per benchmark; overhead = FtDirCMP/DirCMP - 1).\n"
    );

    // Two cells per benchmark: DirCMP baseline then FtDirCMP.
    let specs = benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        cells.push(Cell::new(
            format!("{}/dircmp", spec.name),
            spec.clone(),
            SystemConfig::dircmp(),
            seeds,
        ));
        cells.push(Cell::new(
            format!("{}/ftdircmp", spec.name),
            spec.clone(),
            SystemConfig::ftdircmp(),
            seeds,
        ));
    }
    let results = run_campaign(&cells, &Campaign::from_args(&args));

    let mut t = Table::with_columns(&[
        "benchmark",
        "msgs overhead",
        "bytes overhead",
        "ownership share of added msgs",
    ]);
    let (mut sum_msg, mut sum_byte) = (0.0, 0.0);
    let mut n = 0.0;
    for (si, spec) in specs.iter().enumerate() {
        let base = &results[si * 2];
        let ft = &results[si * 2 + 1];
        let m_base = mean(base, |r| r.stats.total_messages() as f64);
        let m_ft = mean(ft, |r| r.stats.total_messages() as f64);
        let b_base = mean(base, |r| r.stats.total_bytes() as f64);
        let b_ft = mean(ft, |r| r.stats.total_bytes() as f64);
        let ownership = mean(ft, |r| {
            r.stats.messages_by_class(VcClass::OwnershipAck) as f64
        });
        let msg_ov = m_ft / m_base - 1.0;
        let byte_ov = b_ft / b_base - 1.0;
        sum_msg += msg_ov;
        sum_byte += byte_ov;
        n += 1.0;
        t.row(vec![
            spec.name.into(),
            signed_percent(msg_ov),
            signed_percent(byte_ov),
            format!("{:.0}%", 100.0 * ownership / (m_ft - m_base)),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        signed_percent(sum_msg / n),
        signed_percent(sum_byte / n),
        String::new(),
    ]);
    println!("{}", t.render());

    // Per-class breakdown for one representative benchmark (the stacked
    // bars of the paper's figure). The campaign already ran these cells;
    // determinism makes reuse identical to a fresh run.
    let spec = &specs[0];
    let base = &results[0];
    let ft = &results[1];
    println!(
        "Per-class breakdown for {} (messages, then bytes):\n",
        spec.name
    );
    let mut t = Table::with_columns(&["class", "DirCMP", "FtDirCMP", "DirCMP B", "FtDirCMP B"]);
    for class in VcClass::ALL {
        t.row(vec![
            class.label().into(),
            format!(
                "{:.0}",
                mean(base, |r| r.stats.messages_by_class(class) as f64)
            ),
            format!(
                "{:.0}",
                mean(ft, |r| r.stats.messages_by_class(class) as f64)
            ),
            format!(
                "{:.0}",
                mean(base, |r| r.stats.bytes_by_class(class) as f64)
            ),
            format!("{:.0}", mean(ft, |r| r.stats.bytes_by_class(class) as f64)),
        ]);
    }
    println!("{}", t.render());
    println!("(The overhead comes entirely from the ownership acknowledgments, §3.6.)");
}
