//! Ablation of the migratory-sharing optimization (paper §2: DirCMP
//! "includes a migratory sharing optimization to accelerate
//! read-modify-write sharing behavior") — run the suite with it on and off
//! and measure what it buys, under both protocols.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ablation_migratory [-- --seeds N --jobs N]
//! ```

use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
use ftdircmp_bench::{benchmarks, geomean_ratio, mean, BenchArgs, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::{times, Table};

fn main() {
    let args = BenchArgs::parse();
    let seeds = args.u64_flag("--seeds", DEFAULT_SEEDS);
    println!(
        "Migratory-sharing ablation ({seeds} seeds): execution time without the\n\
         optimization relative to with it (values > 1.0 = the optimization helps).\n"
    );

    // Four cells per benchmark: (DirCMP, FtDirCMP) × (on, off).
    let specs = benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        for (proto, base_cfg) in [
            ("dircmp", SystemConfig::dircmp()),
            ("ftdircmp", SystemConfig::ftdircmp()),
        ] {
            cells.push(Cell::new(
                format!("{}/{proto}-on", spec.name),
                spec.clone(),
                base_cfg.clone(),
                seeds,
            ));
            let mut off_cfg = base_cfg;
            off_cfg.migratory_sharing = false;
            cells.push(Cell::new(
                format!("{}/{proto}-off", spec.name),
                spec.clone(),
                off_cfg,
                seeds,
            ));
        }
    }
    let results = run_campaign(&cells, &Campaign::from_args(&args));

    let mut t = Table::with_columns(&[
        "benchmark",
        "grants (FtDirCMP)",
        "DirCMP off/on",
        "FtDirCMP off/on",
    ]);
    for (si, spec) in specs.iter().enumerate() {
        let mut rows: Vec<String> = vec![spec.name.to_string()];
        let mut grants = 0.0;
        for proto in 0..2 {
            let on = &results[si * 4 + proto * 2];
            let off = &results[si * 4 + proto * 2 + 1];
            if proto == 1 {
                grants = mean(on, |r| r.stats.migratory_grants.get() as f64);
            }
            rows.push(times(geomean_ratio(off, on, |r| r.cycles as f64)));
        }
        rows.insert(1, format!("{grants:.0}"));
        t.row(rows);
    }
    println!("{}", t.render());
    println!(
        "Shape to observe: benchmarks dominated by read-modify-write sharing\n\
         (barnes, water-*, sjbb) gain the most; streaming benchmarks are\n\
         unaffected (no migratory grants to make)."
    );
}
