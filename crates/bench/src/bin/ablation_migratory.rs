//! Ablation of the migratory-sharing optimization (paper §2: DirCMP
//! "includes a migratory sharing optimization to accelerate
//! read-modify-write sharing behavior") — run the suite with it on and off
//! and measure what it buys, under both protocols.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ablation_migratory [-- --seeds N]
//! ```

use ftdircmp_bench::{arg_u64, benchmarks, geomean_ratio, mean, run_spec, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::{times, Table};

fn main() {
    let seeds = arg_u64("--seeds", DEFAULT_SEEDS);
    println!(
        "Migratory-sharing ablation ({seeds} seeds): execution time without the\n\
         optimization relative to with it (values > 1.0 = the optimization helps).\n"
    );
    let mut t = Table::with_columns(&[
        "benchmark",
        "grants (FtDirCMP)",
        "DirCMP off/on",
        "FtDirCMP off/on",
    ]);
    for spec in benchmarks() {
        let mut rows: Vec<String> = vec![spec.name.to_string()];
        let mut grants = 0.0;
        for base_cfg in [SystemConfig::dircmp(), SystemConfig::ftdircmp()] {
            let on = run_spec(&spec, &base_cfg, seeds);
            let mut off_cfg = base_cfg.clone();
            off_cfg.migratory_sharing = false;
            let off = run_spec(&spec, &off_cfg, seeds);
            if base_cfg.protocol.is_fault_tolerant() {
                grants = mean(&on, |r| r.stats.migratory_grants.get() as f64);
            }
            rows.push(times(geomean_ratio(&off, &on, |r| r.cycles as f64)));
        }
        rows.insert(1, format!("{grants:.0}"));
        t.row(rows);
    }
    println!("{}", t.render());
    println!(
        "Shape to observe: benchmarks dominated by read-modify-write sharing\n\
         (barnes, water-*, sjbb) gain the most; streaming benchmarks are\n\
         unaffected (no migratory grants to make)."
    );
}
