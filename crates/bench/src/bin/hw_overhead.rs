//! Regenerates the paper's §3.6 hardware-overhead estimation as concrete
//! numbers for the Table 4 machine.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin hw_overhead
//! ```

use ftdircmp_core::hardware::{estimate, relative_to_caches, HwAssumptions};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::Table;

fn main() {
    let cfg = SystemConfig::ftdircmp();
    let assumptions = HwAssumptions::default();
    let hw = estimate(&cfg, &assumptions);

    println!("Hardware overhead estimation (paper §3.6), Table 4 machine.\n");
    println!(
        "Assumptions: {} L1 MSHRs, {} WB entries, {} L2 TBEs, {} memory TBEs,\n\
         {} backup-buffer entries per L1, {}-bit CRC per message.\n",
        assumptions.l1_mshrs,
        assumptions.l1_wb_entries,
        assumptions.l2_tbes,
        assumptions.mem_tbes,
        assumptions.backup_entries,
        assumptions.crc_bits
    );

    let mut t = Table::with_columns(&["structure", "extra storage"]);
    t.row(vec![
        "per L1 cache (timers, serials, backup buffer)".into(),
        format!("{} bits ({} bytes)", hw.per_l1_bits, hw.per_l1_bits / 8),
    ]);
    t.row(vec![
        "per L2 bank (timers, serials, blocker ids)".into(),
        format!("{} bits ({} bytes)", hw.per_l2_bits, hw.per_l2_bits / 8),
    ]);
    t.row(vec![
        "per memory controller".into(),
        format!("{} bits ({} bytes)", hw.per_mem_bits, hw.per_mem_bits / 8),
    ]);
    t.row(vec![
        "per network message (serial + CRC)".into(),
        format!("{} bits", hw.per_message_bits),
    ]);
    t.row(vec![
        "extra virtual channels".into(),
        hw.extra_virtual_channels.to_string(),
    ]);
    t.row(vec![
        "chip total".into(),
        format!(
            "{} bits ({:.1} KB) = {:.3}% of cache capacity",
            hw.chip_total_bits,
            hw.chip_total_bits as f64 / 8.0 / 1024.0,
            100.0 * relative_to_caches(&cfg, &hw)
        ),
    ]);
    println!("{}", t.render());
    println!(
        "Paper §3.6/§6: \"a very small hardware overhead\" plus two extra\n\
         virtual channels — quantified here at well under 1% of cache capacity."
    );
}
