//! Per-class fault-vulnerability study: losses targeted at one message
//! class at a time, isolating which recovery mechanism (Table 3) covers
//! which traffic — an extension of the paper's uniform-loss fault model.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ablation_fault_targets [-- --seeds N]
//! ```

use ftdircmp_bench::{arg_u64, geomean_ratio, mean, run_spec, DEFAULT_SEEDS};
use ftdircmp_core::{SystemConfig, TimeoutKind};
use ftdircmp_noc::{FaultConfig, VcClass};
use ftdircmp_stats::table::{times, Table};
use ftdircmp_workloads::WorkloadSpec;

fn main() {
    let seeds = arg_u64("--seeds", DEFAULT_SEEDS);
    let rate = 5000.0;
    let spec = WorkloadSpec::named("barnes").expect("in suite");
    println!(
        "Targeted-loss ablation: {rate:.0} lost msgs/million aimed at ONE class\n\
         (benchmark {}, {seeds} seeds; relative to the fault-free run).\n",
        spec.name
    );
    let baseline = run_spec(&spec, &SystemConfig::ftdircmp(), seeds);
    let mut t = Table::with_columns(&[
        "targeted class",
        "rel. exec. time",
        "lost",
        "lost-request",
        "lost-unblock",
        "lost-ackbd",
        "lost-data",
    ]);
    for class in VcClass::ALL {
        let mut cfg = SystemConfig::ftdircmp();
        cfg.mesh.faults = FaultConfig::targeting(rate, vec![class]);
        cfg.watchdog_cycles = 4_000_000;
        let runs = run_spec(&spec, &cfg, seeds);
        t.row(vec![
            class.label().into(),
            times(geomean_ratio(&runs, &baseline, |r| r.cycles as f64)),
            format!("{:.0}", mean(&runs, |r| r.messages_lost as f64)),
            format!(
                "{:.0}",
                mean(&runs, |r| r.stats.timeouts(TimeoutKind::LostRequest) as f64)
            ),
            format!(
                "{:.0}",
                mean(&runs, |r| r.stats.timeouts(TimeoutKind::LostUnblock) as f64)
            ),
            format!(
                "{:.0}",
                mean(&runs, |r| r.stats.timeouts(TimeoutKind::LostAckBd) as f64)
            ),
            format!(
                "{:.0}",
                mean(&runs, |r| r.stats.timeouts(TimeoutKind::LostData) as f64)
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading the rows against Table 3: request/forward/response losses are\n\
         detected by the requester's lost-request timer; unblock losses by the\n\
         directory's lost-unblock timer (pings); ownership-ack losses by the\n\
         lost-AckBD timer; and data lost after an ownership transfer also\n\
         engages the backup holder's lost-data/OwnershipPing path."
    );
}
