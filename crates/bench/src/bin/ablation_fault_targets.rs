//! Per-class fault-vulnerability study: losses targeted at one message
//! class at a time, isolating which recovery mechanism (Table 3) covers
//! which traffic — an extension of the paper's uniform-loss fault model.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ablation_fault_targets [-- --seeds N --jobs N]
//! ```

use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
use ftdircmp_bench::{geomean_ratio, mean, BenchArgs, DEFAULT_SEEDS};
use ftdircmp_core::{SystemConfig, TimeoutKind};
use ftdircmp_noc::{FaultConfig, VcClass};
use ftdircmp_stats::table::{times, Table};
use ftdircmp_workloads::WorkloadSpec;

fn main() {
    let args = BenchArgs::parse();
    let seeds = args.u64_flag("--seeds", DEFAULT_SEEDS);
    let rate = 5000.0;
    let spec = WorkloadSpec::named("barnes").expect("in suite");
    println!(
        "Targeted-loss ablation: {rate:.0} lost msgs/million aimed at ONE class\n\
         (benchmark {}, {seeds} seeds; relative to the fault-free run).\n",
        spec.name
    );

    // Cell 0: fault-free baseline; then one targeted-loss cell per class.
    let mut cells = vec![Cell::new(
        format!("{}/baseline", spec.name),
        spec.clone(),
        SystemConfig::ftdircmp(),
        seeds,
    )];
    for class in VcClass::ALL {
        let mut cfg = SystemConfig::ftdircmp();
        cfg.mesh.faults = FaultConfig::targeting(rate, vec![class]);
        cfg.watchdog_cycles = 4_000_000;
        cells.push(Cell::new(
            format!("{}/target-{}", spec.name, class.label()),
            spec.clone(),
            cfg,
            seeds,
        ));
    }
    let results = run_campaign(&cells, &Campaign::from_args(&args));
    let baseline = &results[0];

    let mut t = Table::with_columns(&[
        "targeted class",
        "rel. exec. time",
        "lost",
        "lost-request",
        "lost-unblock",
        "lost-ackbd",
        "lost-data",
    ]);
    for (ci, class) in VcClass::ALL.iter().enumerate() {
        let runs = &results[ci + 1];
        t.row(vec![
            class.label().into(),
            times(geomean_ratio(runs, baseline, |r| r.cycles as f64)),
            format!("{:.0}", mean(runs, |r| r.messages_lost as f64)),
            format!(
                "{:.0}",
                mean(runs, |r| r.stats.timeouts(TimeoutKind::LostRequest) as f64)
            ),
            format!(
                "{:.0}",
                mean(runs, |r| r.stats.timeouts(TimeoutKind::LostUnblock) as f64)
            ),
            format!(
                "{:.0}",
                mean(runs, |r| r.stats.timeouts(TimeoutKind::LostAckBd) as f64)
            ),
            format!(
                "{:.0}",
                mean(runs, |r| r.stats.timeouts(TimeoutKind::LostData) as f64)
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading the rows against Table 3: request/forward/response losses are\n\
         detected by the requester's lost-request timer; unblock losses by the\n\
         directory's lost-unblock timer (pings); ownership-ack losses by the\n\
         lost-AckBD timer; and data lost after an ownership transfer also\n\
         engages the backup holder's lost-data/OwnershipPing path."
    );
}
