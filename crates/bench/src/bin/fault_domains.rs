//! Experiment E13 — degradation curves under **correlated fault domains**
//! (DESIGN.md §12): link flaps of growing duration and region bursts of
//! growing radius, run through FtDirCMP with the per-fault-epoch recovery
//! telemetry the campaigns plot.
//!
//! Unlike Figure 3's uniform message-loss lottery, these faults are
//! spatially and temporally correlated: one link goes hard-down over a
//! window, or every link within a Manhattan radius of an epicenter is
//! degraded together. The experiment answers two questions the uniform
//! model cannot:
//!
//! * how does execution time degrade with the *duration* of an outage and
//!   the *extent* of a degraded region, and
//! * how long after the fault clears does the protocol take to recover
//!   (first retirement after the window, from `SimReport::fault_epochs`)?
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin fault_domains \
//!     [-- --seeds N --jobs N --csv FILE --bench-json FILE]
//! ```

use ftdircmp_bench::campaign::{Campaign, CampaignTiming, Cell};
use ftdircmp_bench::{benchmarks, geomean_ratio, mean, BenchArgs, DEFAULT_SEEDS};
use ftdircmp_core::{SimReport, SystemConfig};
use ftdircmp_noc::{Direction, FaultDomainConfig, FaultEvent, RouterId};
use ftdircmp_stats::table::{times, Table};

/// Flap outages on the central r5→east link, all starting at cycle 2000.
const FLAP_DURATIONS: [u64; 3] = [2_000, 8_000, 20_000];
/// Region bursts centered on r5 over [2000, 10000), by Manhattan radius.
const BURST_RADII: [u32; 3] = [0, 1, 2];
const FAULT_START: u64 = 2_000;
const BURST_END: u64 = 10_000;

fn flap_domain(duration: u64) -> FaultDomainConfig {
    FaultDomainConfig::events(vec![FaultEvent::LinkFlap {
        from: RouterId::new(5),
        dir: Direction::East,
        start: FAULT_START,
        end: FAULT_START + duration,
    }])
}

fn burst_domain(radius: u32) -> FaultDomainConfig {
    FaultDomainConfig::events(vec![FaultEvent::RegionBurst {
        epicenter: RouterId::new(5),
        radius,
        start: FAULT_START,
        end: BURST_END,
    }])
}

/// Mean time-to-recover across the seeds of one cell, and how many seeds
/// never recovered inside the run (epoch outlived the workload).
fn recovery_stats(reports: &[SimReport]) -> (Option<f64>, usize) {
    let mut ttrs = Vec::new();
    let mut unrecovered = 0;
    for r in reports {
        for e in &r.fault_epochs {
            match e.time_to_recover() {
                Some(t) => ttrs.push(t as f64),
                None => unrecovered += 1,
            }
        }
    }
    let mean_ttr = (!ttrs.is_empty()).then(|| ttrs.iter().sum::<f64>() / ttrs.len() as f64);
    (mean_ttr, unrecovered)
}

fn main() {
    let args = BenchArgs::parse();
    let seeds = args.u64_flag("--seeds", DEFAULT_SEEDS);
    let opts = Campaign::from_args(&args);
    println!(
        "Correlated fault domains: FtDirCMP under link flaps (r5-east, growing\n\
         duration) and region bursts (epicenter r5, growing radius), relative to\n\
         fault-free FtDirCMP. {seeds} seeds per cell.\n"
    );

    // One cell per (benchmark, column): the fault-free baseline, one cell
    // per flap duration, one per burst radius — in table order.
    let specs = benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        let base = || {
            let mut cfg = SystemConfig::ftdircmp();
            cfg.watchdog_cycles = 3_000_000;
            cfg
        };
        cells.push(Cell::new(
            format!("{}/ft-clean", spec.name),
            spec.clone(),
            base(),
            seeds,
        ));
        for d in FLAP_DURATIONS {
            cells.push(Cell::new(
                format!("{}/flap-{d}", spec.name),
                spec.clone(),
                base().with_fault_domains(flap_domain(d)),
                seeds,
            ));
        }
        for r in BURST_RADII {
            cells.push(Cell::new(
                format!("{}/burst-r{r}", spec.name),
                spec.clone(),
                base().with_fault_domains(burst_domain(r)),
                seeds,
            ));
        }
    }
    let (results, timing) = CampaignTiming::measure(&cells, &opts);

    let mut header: Vec<String> = vec!["benchmark".into()];
    header.extend(FLAP_DURATIONS.iter().map(|d| format!("flap-{d}")));
    header.extend(BURST_RADII.iter().map(|r| format!("burst-r{r}")));
    let mut t = Table::new(header.clone());
    let mut rec = Table::new({
        let mut h = header;
        h[0] = "mean recovery (cycles)".into();
        h
    });

    let cols = 1 + FLAP_DURATIONS.len() + BURST_RADII.len();
    let mut per_col_ratios: Vec<Vec<f64>> = vec![Vec::new(); cols - 1];
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        let base = &results[si * cols];
        let mut row = vec![spec.name.to_string()];
        let mut rec_row = vec![spec.name.to_string()];
        let mut csv_row = vec![spec.name.to_string()];
        for col in 0..cols - 1 {
            let faulty = &results[si * cols + 1 + col];
            let rel = geomean_ratio(faulty, base, |r| r.cycles as f64);
            per_col_ratios[col].push(rel);
            row.push(times(rel));
            csv_row.push(format!("{rel:.4}"));
            let (ttr, unrecovered) = recovery_stats(faulty);
            let lost = mean(faulty, |r| r.messages_lost as f64);
            rec_row.push(match ttr {
                Some(v) if unrecovered == 0 => format!("{v:.0} ({lost:.0} lost)"),
                Some(v) => format!("{v:.0} ({unrecovered} open, {lost:.0} lost)"),
                None => format!("open ({lost:.0} lost)"),
            });
            csv_row.push(ttr.map_or_else(|| "-".into(), |v| format!("{v:.0}")));
        }
        t.row(row);
        rec.row(rec_row);
        csv_rows.push(csv_row);
    }
    let mut avg_row = vec!["GEOMEAN".to_string()];
    for ratios in &per_col_ratios {
        let g = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        avg_row.push(times(g));
    }
    t.row(avg_row);
    println!("{}", t.render());
    println!("{}", rec.render());
    println!(
        "(Execution time relative to fault-free FtDirCMP; recovery is the mean\n\
         gap between the fault window closing and the first retirement after it.\n\
         DirCMP deadlocks under any of these schedules — see the negative\n\
         control in `crates/core/tests/fault_domains.rs`.)"
    );

    if let Some(path) = args.csv() {
        let mut header: Vec<String> = vec!["benchmark".into()];
        for d in FLAP_DURATIONS {
            header.push(format!("flap_{d}"));
            header.push(format!("flap_{d}_ttr"));
        }
        for r in BURST_RADII {
            header.push(format!("burst_r{r}"));
            header.push(format!("burst_r{r}_ttr"));
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        ftdircmp_bench::write_csv(&path, &header_refs, &csv_rows).expect("write csv");
        println!("(wrote {path})");
    }

    if let Some(path) = args.value_of("--bench-json") {
        let json = format!(
            "{{\n  \"campaign\": \"fault_domains\",\n  \"jobs\": {},\n  \
             \"wall_seconds\": {:.3},\n  \"simulated_cycles\": {},\n  \
             \"simulated_cycles_per_second\": {:.0},\n  \"events\": {},\n  \
             \"events_per_second\": {:.0}\n}}\n",
            timing.jobs,
            timing.wall_seconds,
            timing.simulated_cycles,
            timing.cycles_per_second(),
            timing.events,
            timing.events_per_second(),
        );
        std::fs::write(path, json).expect("write bench json");
        println!("(wrote {path})");
    }
}
