//! Quantifies the paper's §5 argument: checkpoint/rollback schemes
//! (ReVive, SafetyNet) pay overhead even without faults, while FtDirCMP's
//! fault-free overhead is ≈ 0 and its per-fault cost is a localized retry
//! rather than a rollback.
//!
//! FtDirCMP's column is *measured* (simulated); the checkpoint column is
//! the Young/Daly analytical optimum fed with the same run's message
//! throughput (see `ftdircmp_bench::checkpoint`).
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ext_checkpoint_comparison [-- --seeds N --jobs N]
//! ```

use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
use ftdircmp_bench::checkpoint::{rate_per_cycle, CheckpointModel};
use ftdircmp_bench::{geomean_ratio, mean, BenchArgs, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::{times, Table};
use ftdircmp_workloads::WorkloadSpec;

const RATES: [f64; 5] = [0.0, 125.0, 500.0, 1000.0, 2000.0];

fn main() {
    let args = BenchArgs::parse();
    let seeds = args.u64_flag("--seeds", DEFAULT_SEEDS);
    let spec = WorkloadSpec::named("ocean").expect("in suite");
    let model = CheckpointModel::default();
    println!(
        "Checkpoint/rollback vs. FtDirCMP (benchmark {}, {seeds} seeds).\n\
         Checkpoint column: Young-optimal analytical model (cost {:.0} cycles,\n\
         detection {:.0}, restore {:.0}); FtDirCMP column: measured.\n",
        spec.name, model.checkpoint_cost, model.detection_latency, model.restore_cost
    );

    // Cell 0: DirCMP baseline; then one FtDirCMP cell per fault rate.
    let mut cells = vec![Cell::new(
        format!("{}/dircmp", spec.name),
        spec.clone(),
        SystemConfig::dircmp(),
        seeds,
    )];
    for rate in RATES {
        let mut cfg = SystemConfig::ftdircmp().with_fault_rate(rate);
        cfg.watchdog_cycles = 3_000_000;
        cells.push(Cell::new(
            format!("{}/ft-{rate:.0}", spec.name),
            spec.clone(),
            cfg,
            seeds,
        ));
    }
    let results = run_campaign(&cells, &Campaign::from_args(&args));

    let base = &results[0];
    let base_cycles = mean(base, |r| r.cycles as f64) as u64;
    let base_msgs = mean(base, |r| r.stats.total_messages() as f64) as u64;

    let mut t = Table::with_columns(&[
        "lost msgs/million",
        "faults/Mcycle",
        "checkpoint (model)",
        "FtDirCMP (measured)",
    ]);
    for (ri, rate) in RATES.iter().enumerate() {
        let ft = &results[ri + 1];
        let measured = geomean_ratio(ft, base, |r| r.cycles as f64);
        let per_cycle = rate_per_cycle(*rate, base_msgs, base_cycles);
        let model_time = model.optimal_relative_time(per_cycle);
        t.row(vec![
            format!("{rate:.0}"),
            format!("{:.2}", per_cycle * 1e6),
            times(model_time),
            times(measured),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading: the checkpoint machine pays its flush cost even at rate 0 and\n\
         loses half an interval per fault; FtDirCMP pays ≈ nothing fault-free\n\
         and only a localized timeout+retry per fault — the quantitative form\n\
         of the paper's §5 comparison."
    );
}
