//! Memory-level-parallelism ablation: non-blocking cores (several
//! outstanding misses) overlap miss latency and multiply the concurrent
//! transactions each L1 presents to the protocol. The paper's protocol
//! claims correctness independent of the core model (§2); this sweep
//! measures the performance side and confirms the FT overhead stays flat.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ablation_mlp [-- --seeds N --jobs N]
//! ```

use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
use ftdircmp_bench::{geomean_ratio, BenchArgs, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::{times, Table};
use ftdircmp_workloads::WorkloadSpec;

const WINDOWS: [u8; 4] = [1, 2, 4, 8];
const NAMES: [&str; 4] = ["fft", "radix", "barnes", "apache"];

fn main() {
    let args = BenchArgs::parse();
    let seeds = args.u64_flag("--seeds", DEFAULT_SEEDS);
    println!(
        "MLP ablation ({seeds} seeds): execution time with a miss window of N\n\
         relative to the blocking core (window 1), plus the FtDirCMP/DirCMP\n\
         overhead at each window.\n"
    );
    let mut header: Vec<String> = vec!["benchmark".into()];
    for w in WINDOWS {
        header.push(format!("w={w}"));
    }
    header.push("ft ovh w=1".into());
    header.push(format!("ft ovh w={}", WINDOWS[WINDOWS.len() - 1]));
    let mut t = Table::new(header);

    // Two cells (DirCMP, FtDirCMP) per (benchmark, window).
    let mut cells = Vec::new();
    for name in NAMES {
        let spec = WorkloadSpec::named(name).expect("in suite");
        for w in WINDOWS {
            let mut dir_cfg = SystemConfig::dircmp();
            dir_cfg.max_outstanding_misses = w;
            let mut ft_cfg = SystemConfig::ftdircmp();
            ft_cfg.max_outstanding_misses = w;
            cells.push(Cell::new(
                format!("{name}/dircmp-w{w}"),
                spec.clone(),
                dir_cfg,
                seeds,
            ));
            cells.push(Cell::new(
                format!("{name}/ftdircmp-w{w}"),
                spec.clone(),
                ft_cfg,
                seeds,
            ));
        }
    }
    let results = run_campaign(&cells, &Campaign::from_args(&args));

    for (ni, name) in NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        let mut base1 = None;
        let mut ft_ovh = Vec::new();
        for (wi, w) in WINDOWS.iter().enumerate() {
            let dir = &results[(ni * WINDOWS.len() + wi) * 2];
            let ft = &results[(ni * WINDOWS.len() + wi) * 2 + 1];
            if *w == 1 {
                base1 = Some(dir.iter().map(|r| r.cycles as f64).sum::<f64>());
            }
            let sum: f64 = dir.iter().map(|r| r.cycles as f64).sum();
            row.push(times(sum / base1.as_ref().unwrap()));
            if *w == WINDOWS[0] || *w == WINDOWS[WINDOWS.len() - 1] {
                ft_ovh.push(times(geomean_ratio(ft, dir, |r| r.cycles as f64)));
            }
        }
        row.extend(ft_ovh);
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "Shape to observe: miss-bound benchmarks speed up with the window as\n\
         misses overlap, while the FtDirCMP overhead stays ≈ 1.0x at every\n\
         window — the handshakes remain off the critical path even with many\n\
         concurrent transactions per L1."
    );
}
