//! Memory-level-parallelism ablation: non-blocking cores (several
//! outstanding misses) overlap miss latency and multiply the concurrent
//! transactions each L1 presents to the protocol. The paper's protocol
//! claims correctness independent of the core model (§2); this sweep
//! measures the performance side and confirms the FT overhead stays flat.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ablation_mlp [-- --seeds N]
//! ```

use ftdircmp_bench::{arg_u64, geomean_ratio, run_spec, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::{times, Table};
use ftdircmp_workloads::WorkloadSpec;

const WINDOWS: [u8; 4] = [1, 2, 4, 8];

fn main() {
    let seeds = arg_u64("--seeds", DEFAULT_SEEDS);
    println!(
        "MLP ablation ({seeds} seeds): execution time with a miss window of N\n\
         relative to the blocking core (window 1), plus the FtDirCMP/DirCMP\n\
         overhead at each window.\n"
    );
    let mut header: Vec<String> = vec!["benchmark".into()];
    for w in WINDOWS {
        header.push(format!("w={w}"));
    }
    header.push("ft ovh w=1".into());
    header.push(format!("ft ovh w={}", WINDOWS[WINDOWS.len() - 1]));
    let mut t = Table::new(header);

    for name in ["fft", "radix", "barnes", "apache"] {
        let spec = WorkloadSpec::named(name).expect("in suite");
        let mut row = vec![name.to_string()];
        let mut base1 = None;
        let mut ft_ovh = Vec::new();
        for w in WINDOWS {
            let mut dir_cfg = SystemConfig::dircmp();
            dir_cfg.max_outstanding_misses = w;
            let mut ft_cfg = SystemConfig::ftdircmp();
            ft_cfg.max_outstanding_misses = w;
            let dir = run_spec(&spec, &dir_cfg, seeds);
            let ft = run_spec(&spec, &ft_cfg, seeds);
            if w == 1 {
                base1 = Some(dir.iter().map(|r| r.cycles as f64).sum::<f64>());
            }
            let sum: f64 = dir.iter().map(|r| r.cycles as f64).sum();
            row.push(times(sum / base1.as_ref().unwrap()));
            if w == WINDOWS[0] || w == WINDOWS[WINDOWS.len() - 1] {
                ft_ovh.push(times(geomean_ratio(&ft, &dir, |r| r.cycles as f64)));
            }
        }
        row.extend(ft_ovh);
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "Shape to observe: miss-bound benchmarks speed up with the window as\n\
         misses overlap, while the FtDirCMP overhead stays ≈ 1.0x at every\n\
         window — the handshakes remain off the critical path even with many\n\
         concurrent transactions per L1."
    );
}
