//! Experiment E7 — regenerates the paper's **Figure 3**: execution time of
//! FtDirCMP relative to DirCMP, per benchmark, for fault rates from 0 to
//! 2000 messages lost per million (plus the fault-free DirCMP baseline).
//!
//! The paper's headline results this reproduces:
//! * at fault rate 0, FtDirCMP's bar is ≈ 1.0 (no overhead);
//! * bars grow with the fault rate, staying moderate (average < 1.5x even
//!   at 2000/M, with a few benchmarks up to ≈ 2x);
//! * DirCMP cannot execute at all for any nonzero rate.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin fig3_execution_time \
//!     [-- --seeds N --jobs N --csv FILE --bench-json FILE]
//! ```

use ftdircmp_bench::campaign::{Campaign, CampaignTiming, Cell};
use ftdircmp_bench::{benchmarks, geomean_ratio, BenchArgs, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::{times, Table};

const RATES: [f64; 6] = [0.0, 125.0, 250.0, 500.0, 1000.0, 2000.0];

fn main() {
    let args = BenchArgs::parse();
    let seeds = args.u64_flag("--seeds", DEFAULT_SEEDS);
    let opts = Campaign::from_args(&args);
    println!(
        "Figure 3. Execution time of FtDirCMP relative to DirCMP (fault-free),\n\
         for fault rates of 0..2000 messages lost per million. {seeds} seeds per cell.\n"
    );

    // One cell per (benchmark, column): the DirCMP baseline plus one
    // FtDirCMP cell per fault rate, in table order.
    let specs = benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        cells.push(Cell::new(
            format!("{}/dircmp", spec.name),
            spec.clone(),
            SystemConfig::dircmp(),
            seeds,
        ));
        for rate in RATES {
            let mut cfg = SystemConfig::ftdircmp().with_fault_rate(rate);
            cfg.watchdog_cycles = 3_000_000;
            cells.push(Cell::new(
                format!("{}/ft-{rate:.0}", spec.name),
                spec.clone(),
                cfg,
                seeds,
            ));
        }
    }
    let (results, timing) = CampaignTiming::measure(&cells, &opts);

    let mut header: Vec<String> = vec!["benchmark".into(), "DirCMP".into()];
    header.extend(RATES.iter().map(|r| format!("Ft-{r:.0}")));
    let mut t = Table::new(header);

    let cols = 1 + RATES.len();
    let mut per_rate_ratios: Vec<Vec<f64>> = vec![Vec::new(); RATES.len()];
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        let base = &results[si * cols];
        let mut row = vec![spec.name.to_string(), times(1.0)];
        let mut csv_row = vec![spec.name.to_string()];
        for i in 0..RATES.len() {
            let ft = &results[si * cols + 1 + i];
            let rel = geomean_ratio(ft, base, |r| r.cycles as f64);
            per_rate_ratios[i].push(rel);
            row.push(times(rel));
            csv_row.push(format!("{rel:.4}"));
        }
        t.row(row);
        csv_rows.push(csv_row);
    }
    if let Some(path) = args.csv() {
        let header: Vec<String> = std::iter::once("benchmark".to_string())
            .chain(RATES.iter().map(|r| format!("ft_{r:.0}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        ftdircmp_bench::write_csv(&path, &header_refs, &csv_rows).expect("write csv");
        println!("(wrote {path})\n");
    }
    let mut avg_row = vec!["GEOMEAN".to_string(), times(1.0)];
    for ratios in &per_rate_ratios {
        let g = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        avg_row.push(times(g));
    }
    t.row(avg_row);
    println!("{}", t.render());
    println!(
        "(Columns are lost messages per million. DirCMP deadlocks at any nonzero\n\
         rate — see `cargo test --test dircmp_deadlock` — so only its fault-free\n\
         bar exists, exactly as in the paper.)"
    );

    if let Some(path) = args.value_of("--bench-json") {
        let json = format!(
            "{{\n  \"campaign\": \"fig3_execution_time\",\n  \"jobs\": {},\n  \
             \"wall_seconds\": {:.3},\n  \"simulated_cycles\": {},\n  \
             \"simulated_cycles_per_second\": {:.0},\n  \"events\": {},\n  \
             \"events_per_second\": {:.0}\n}}\n",
            timing.jobs,
            timing.wall_seconds,
            timing.simulated_cycles,
            timing.cycles_per_second(),
            timing.events,
            timing.events_per_second(),
        );
        std::fs::write(path, json).expect("write bench json");
        println!("(wrote {path})");
    }
}
