//! Experiment E7 — regenerates the paper's **Figure 3**: execution time of
//! FtDirCMP relative to DirCMP, per benchmark, for fault rates from 0 to
//! 2000 messages lost per million (plus the fault-free DirCMP baseline).
//!
//! The paper's headline results this reproduces:
//! * at fault rate 0, FtDirCMP's bar is ≈ 1.0 (no overhead);
//! * bars grow with the fault rate, staying moderate (average < 1.5x even
//!   at 2000/M, with a few benchmarks up to ≈ 2x);
//! * DirCMP cannot execute at all for any nonzero rate.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin fig3_execution_time [-- --seeds N]
//! ```

use ftdircmp_bench::{benchmarks, geomean_ratio, run_spec, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::{times, Table};

const RATES: [f64; 6] = [0.0, 125.0, 250.0, 500.0, 1000.0, 2000.0];

fn main() {
    let seeds = ftdircmp_bench::arg_u64("--seeds", DEFAULT_SEEDS);
    println!(
        "Figure 3. Execution time of FtDirCMP relative to DirCMP (fault-free),\n\
         for fault rates of 0..2000 messages lost per million. {seeds} seeds per cell.\n"
    );

    let mut header: Vec<String> = vec!["benchmark".into(), "DirCMP".into()];
    header.extend(RATES.iter().map(|r| format!("Ft-{r:.0}")));
    let mut t = Table::new(header);

    let mut per_rate_ratios: Vec<Vec<f64>> = vec![Vec::new(); RATES.len()];
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for spec in benchmarks() {
        let base = run_spec(&spec, &SystemConfig::dircmp(), seeds);
        let mut row = vec![spec.name.to_string(), times(1.0)];
        let mut csv_row = vec![spec.name.to_string()];
        for (i, rate) in RATES.iter().enumerate() {
            let mut cfg = SystemConfig::ftdircmp().with_fault_rate(*rate);
            cfg.watchdog_cycles = 3_000_000;
            let ft = run_spec(&spec, &cfg, seeds);
            let rel = geomean_ratio(&ft, &base, |r| r.cycles as f64);
            per_rate_ratios[i].push(rel);
            row.push(times(rel));
            csv_row.push(format!("{rel:.4}"));
        }
        t.row(row);
        csv_rows.push(csv_row);
    }
    if let Some(path) = ftdircmp_bench::arg_csv() {
        let header: Vec<String> = std::iter::once("benchmark".to_string())
            .chain(RATES.iter().map(|r| format!("ft_{r:.0}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        ftdircmp_bench::write_csv(&path, &header_refs, &csv_rows).expect("write csv");
        println!("(wrote {path})\n");
    }
    let mut avg_row = vec!["GEOMEAN".to_string(), times(1.0)];
    for ratios in &per_rate_ratios {
        let g = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        avg_row.push(times(g));
    }
    t.row(avg_row);
    println!("{}", t.render());
    println!(
        "(Columns are lost messages per million. DirCMP deadlocks at any nonzero\n\
         rate — see `cargo test --test dircmp_deadlock` — so only its fault-free\n\
         bar exists, exactly as in the paper.)"
    );
}
