//! Experiment E11 — the unordered-network extension (paper §2, ref \[6\]):
//! FtDirCMP on a randomized minimal adaptive-routing mesh, where
//! point-to-point ordering no longer holds and serial numbers carry the
//! full disambiguation burden.
//!
//! ```text
//! cargo run --release -p ftdircmp-bench --bin ext_unordered_network [-- --seeds N --jobs N]
//! ```

use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
use ftdircmp_bench::{benchmarks, geomean_ratio, BenchArgs, DEFAULT_SEEDS};
use ftdircmp_core::SystemConfig;
use ftdircmp_stats::table::{times, Table};

fn main() {
    let args = BenchArgs::parse();
    let seeds = args.u64_flag("--seeds", DEFAULT_SEEDS);
    println!(
        "Extension E11: FtDirCMP on an unordered network (randomized minimal\n\
         adaptive routing), fault-free and at 1000 lost msgs/million.\n"
    );

    // Three cells per benchmark: XY baseline, adaptive, adaptive + faults.
    let specs = benchmarks();
    let mut cells = Vec::new();
    for spec in &specs {
        cells.push(Cell::new(
            format!("{}/xy", spec.name),
            spec.clone(),
            SystemConfig::ftdircmp(),
            seeds,
        ));
        cells.push(Cell::new(
            format!("{}/adaptive", spec.name),
            spec.clone(),
            SystemConfig::ftdircmp().with_adaptive_routing(),
            seeds,
        ));
        let mut faulty_cfg = SystemConfig::ftdircmp()
            .with_adaptive_routing()
            .with_fault_rate(1000.0);
        faulty_cfg.watchdog_cycles = 4_000_000;
        cells.push(Cell::new(
            format!("{}/adaptive-faulty", spec.name),
            spec.clone(),
            faulty_cfg,
            seeds,
        ));
    }
    let results = run_campaign(&cells, &Campaign::from_args(&args));

    let mut t = Table::with_columns(&[
        "benchmark",
        "adaptive/xy exec time",
        "adaptive+faults/xy",
        "stale discards (faulty)",
    ]);
    for (si, spec) in specs.iter().enumerate() {
        let xy = &results[si * 3];
        let adaptive = &results[si * 3 + 1];
        let faulty = &results[si * 3 + 2];
        t.row(vec![
            spec.name.into(),
            times(geomean_ratio(adaptive, xy, |r| r.cycles as f64)),
            times(geomean_ratio(faulty, xy, |r| r.cycles as f64)),
            format!(
                "{:.0}",
                ftdircmp_bench::mean(faulty, |r| r.stats.stale_discards.get() as f64)
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Every run (including faulty, unordered ones) completed with zero\n\
         coherence violations: the serial-number mechanism (§3.5) subsumes the\n\
         ordering assumption, as the paper claims via its reference [6]."
    );
}
