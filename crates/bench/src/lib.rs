//! Shared harness for the figure-regeneration benchmarks.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (DESIGN.md §3, experiment index); this
//! library holds the common machinery: running the benchmark suite across
//! configurations and averaging across seeds.

pub mod campaign;
pub mod checkpoint;

use ftdircmp_core::{RunError, SimReport, System, SystemConfig};
use ftdircmp_workloads::{suite, WorkloadSpec};

/// Number of seeds averaged per (benchmark, configuration) cell.
pub const DEFAULT_SEEDS: u64 = 3;

/// Runs one seed of `spec` under `config` — the single unit of work both
/// the sequential [`run_spec`] path and the parallel
/// [`campaign::run_campaign`] path execute, so they cannot drift apart.
///
/// # Errors
///
/// Returns the run error (e.g. a DirCMP deadlock) untouched.
pub fn run_seed_fallible(
    spec: &WorkloadSpec,
    config: &SystemConfig,
    seed: u64,
) -> Result<SimReport, RunError> {
    let wl = spec.generate(config.tiles, 1000 + seed);
    let cfg = config.clone().with_seed(1000 + seed);
    System::run_workload(cfg, &wl)
}

/// Unwraps a run result, panicking on failure or invariant violations: a
/// benchmark result from an incoherent run would be meaningless.
///
/// # Panics
///
/// Panics with the workload name and seed if the run failed or the checker
/// reported violations.
pub fn expect_coherent(name: &str, seed: u64, r: Result<SimReport, RunError>) -> SimReport {
    let r = r.unwrap_or_else(|e| panic!("{name} (seed {seed}): {e}"));
    assert!(
        r.violations.is_empty(),
        "{name} (seed {seed}): {:#?}",
        r.violations
    );
    r
}

/// Runs `spec` under `config` for `seeds` seeds, returning all reports.
///
/// # Panics
///
/// Panics if any run fails or violates an invariant: a benchmark result
/// from an incoherent run would be meaningless.
pub fn run_spec(spec: &WorkloadSpec, config: &SystemConfig, seeds: u64) -> Vec<SimReport> {
    (0..seeds)
        .map(|seed| expect_coherent(spec.name, seed, run_seed_fallible(spec, config, seed)))
        .collect()
}

/// Like [`run_spec`] but tolerates deadlocks (used to demonstrate DirCMP's
/// failure mode); returns `Err` results untouched.
pub fn run_spec_fallible(
    spec: &WorkloadSpec,
    config: &SystemConfig,
    seeds: u64,
) -> Vec<Result<SimReport, RunError>> {
    (0..seeds)
        .map(|seed| run_seed_fallible(spec, config, seed))
        .collect()
}

/// Geometric mean of per-seed ratios `f(ft[i]) / f(base[i])`.
///
/// # Panics
///
/// Panics on empty or length-mismatched inputs: an aggregate over zero runs
/// has no value, and returning NaN would silently poison downstream tables.
pub fn geomean_ratio(ft: &[SimReport], base: &[SimReport], f: impl Fn(&SimReport) -> f64) -> f64 {
    assert_eq!(
        ft.len(),
        base.len(),
        "geomean_ratio: mismatched report counts"
    );
    assert!(!ft.is_empty(), "geomean_ratio: no reports to aggregate");
    let log_sum: f64 = ft.iter().zip(base).map(|(a, b)| (f(a) / f(b)).ln()).sum();
    (log_sum / ft.len() as f64).exp()
}

/// Arithmetic mean of `f` across reports.
///
/// # Panics
///
/// Panics on an empty slice (see [`geomean_ratio`]).
pub fn mean(reports: &[SimReport], f: impl Fn(&SimReport) -> f64) -> f64 {
    assert!(!reports.is_empty(), "mean: no reports to aggregate");
    reports.iter().map(&f).sum::<f64>() / reports.len() as f64
}

/// The benchmark suite, re-exported for the bin targets.
pub fn benchmarks() -> Vec<WorkloadSpec> {
    suite()
}

/// Writes rows as a CSV file (numeric cells unquoted, text cells quoted
/// only when they contain separators).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(
    path: impl AsRef<std::path::Path>,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    fn cell(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| cell(c)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Command-line arguments, collected once and shared by all flag lookups
/// (the bins previously re-collected `std::env::args()` per flag).
#[derive(Debug, Clone)]
pub struct BenchArgs {
    args: Vec<String>,
}

impl BenchArgs {
    /// Collects the process arguments.
    pub fn parse() -> Self {
        BenchArgs {
            args: std::env::args().collect(),
        }
    }

    /// Builds from an explicit argument list (tests).
    pub fn from_vec(args: Vec<String>) -> Self {
        BenchArgs { args }
    }

    /// Value following `name`, if present.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// Parses `--seeds N` style overrides.
    pub fn u64_flag(&self, name: &str, default: u64) -> u64 {
        self.value_of(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Optional `--csv FILE` destination.
    pub fn csv(&self) -> Option<String> {
        self.value_of("--csv").map(str::to_string)
    }

    /// Campaign worker count: `--jobs N`, then the `FTDIRCMP_JOBS`
    /// environment variable, then [`std::thread::available_parallelism`].
    pub fn jobs(&self) -> usize {
        self.value_of("--jobs")
            .and_then(|v| v.parse().ok())
            .or_else(|| {
                std::env::var("FTDIRCMP_JOBS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Checkpoint-fork warmup threshold: `--warmup-checkpoint [PCT]` (flag
    /// without a value defaults to 60% of each workload's memory
    /// operations), then the `FTDIRCMP_WARMUP_CHECKPOINT` environment
    /// variable, else `None` (classic full simulation per cell).
    pub fn warmup_checkpoint(&self) -> Option<f64> {
        const DEFAULT_PCT: f64 = 60.0;
        if let Some(i) = self.args.iter().position(|a| a == "--warmup-checkpoint") {
            let pct = self
                .args
                .get(i + 1)
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|p| (0.0..=100.0).contains(p));
            return Some(pct.unwrap_or(DEFAULT_PCT));
        }
        std::env::var("FTDIRCMP_WARMUP_CHECKPOINT")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|p| (0.0..=100.0).contains(p))
    }
}

/// Optional `--csv FILE` destination from argv.
pub fn arg_csv() -> Option<String> {
    BenchArgs::parse().csv()
}

/// Parses `--seeds N` style overrides from argv (very small helper).
pub fn arg_u64(name: &str, default: u64) -> u64 {
    BenchArgs::parse().u64_flag(name, default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_spec_produces_reports_per_seed() {
        let spec = WorkloadSpec::named("water-sp").unwrap();
        let reports = run_spec(&spec, &SystemConfig::ftdircmp(), 2);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn geomean_of_identity_is_one() {
        let spec = WorkloadSpec::named("water-sp").unwrap();
        let a = run_spec(&spec, &SystemConfig::ftdircmp(), 2);
        let g = geomean_ratio(&a, &a, |r| r.cycles as f64);
        assert!((g - 1.0).abs() < 1e-9);
    }

    #[test]
    fn arg_parser_defaults() {
        assert_eq!(arg_u64("--definitely-not-passed", 7), 7);
        assert_eq!(arg_csv(), None);
    }

    #[test]
    fn csv_roundtrip_on_disk() {
        let path = std::env::temp_dir().join("ftdircmp-bench-csv-test.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[
                vec!["1".into(), "plain".into()],
                vec!["2".into(), "with,comma".into()],
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,plain\n2,\"with,comma\"\n");
        std::fs::remove_file(&path).ok();
    }
}
