//! Shared harness for the figure-regeneration benchmarks.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (DESIGN.md §3, experiment index); this
//! library holds the common machinery: running the benchmark suite across
//! configurations and averaging across seeds.

pub mod checkpoint;

use ftdircmp_core::{RunError, SimReport, System, SystemConfig};
use ftdircmp_workloads::{suite, WorkloadSpec};

/// Number of seeds averaged per (benchmark, configuration) cell.
pub const DEFAULT_SEEDS: u64 = 3;

/// Runs `spec` under `config` for `seeds` seeds, returning all reports.
///
/// # Panics
///
/// Panics if any run fails or violates an invariant: a benchmark result
/// from an incoherent run would be meaningless.
pub fn run_spec(spec: &WorkloadSpec, config: &SystemConfig, seeds: u64) -> Vec<SimReport> {
    (0..seeds)
        .map(|seed| {
            let wl = spec.generate(config.tiles, 1000 + seed);
            let cfg = config.clone().with_seed(1000 + seed);
            let r = System::run_workload(cfg, &wl)
                .unwrap_or_else(|e| panic!("{} (seed {seed}): {e}", spec.name));
            assert!(
                r.violations.is_empty(),
                "{} (seed {seed}): {:#?}",
                spec.name,
                r.violations
            );
            r
        })
        .collect()
}

/// Like [`run_spec`] but tolerates deadlocks (used to demonstrate DirCMP's
/// failure mode); returns `Err` results untouched.
pub fn run_spec_fallible(
    spec: &WorkloadSpec,
    config: &SystemConfig,
    seeds: u64,
) -> Vec<Result<SimReport, RunError>> {
    (0..seeds)
        .map(|seed| {
            let wl = spec.generate(config.tiles, 1000 + seed);
            let cfg = config.clone().with_seed(1000 + seed);
            System::run_workload(cfg, &wl)
        })
        .collect()
}

/// Geometric mean of per-seed ratios `f(ft[i]) / f(base[i])`.
pub fn geomean_ratio(ft: &[SimReport], base: &[SimReport], f: impl Fn(&SimReport) -> f64) -> f64 {
    assert_eq!(ft.len(), base.len());
    let log_sum: f64 = ft.iter().zip(base).map(|(a, b)| (f(a) / f(b)).ln()).sum();
    (log_sum / ft.len() as f64).exp()
}

/// Arithmetic mean of `f` across reports.
pub fn mean(reports: &[SimReport], f: impl Fn(&SimReport) -> f64) -> f64 {
    reports.iter().map(&f).sum::<f64>() / reports.len() as f64
}

/// The benchmark suite, re-exported for the bin targets.
pub fn benchmarks() -> Vec<WorkloadSpec> {
    suite()
}

/// Writes rows as a CSV file (numeric cells unquoted, text cells quoted
/// only when they contain separators).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(
    path: impl AsRef<std::path::Path>,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    fn cell(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| cell(c)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Optional `--csv FILE` destination from argv.
pub fn arg_csv() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses `--seeds N` style overrides from argv (very small helper).
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_spec_produces_reports_per_seed() {
        let spec = WorkloadSpec::named("water-sp").unwrap();
        let reports = run_spec(&spec, &SystemConfig::ftdircmp(), 2);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn geomean_of_identity_is_one() {
        let spec = WorkloadSpec::named("water-sp").unwrap();
        let a = run_spec(&spec, &SystemConfig::ftdircmp(), 2);
        let g = geomean_ratio(&a, &a, |r| r.cycles as f64);
        assert!((g - 1.0).abs() < 1e-9);
    }

    #[test]
    fn arg_parser_defaults() {
        assert_eq!(arg_u64("--definitely-not-passed", 7), 7);
        assert_eq!(arg_csv(), None);
    }

    #[test]
    fn csv_roundtrip_on_disk() {
        let path = std::env::temp_dir().join("ftdircmp-bench-csv-test.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[
                vec!["1".into(), "plain".into()],
                vec!["2".into(), "with,comma".into()],
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,plain\n2,\"with,comma\"\n");
        std::fs::remove_file(&path).ok();
    }
}
