//! Criterion benchmarks: wall-clock performance of the simulator itself.
//!
//! These measure the *simulator* (events/second), complementing the
//! figure-regeneration binaries which measure the *simulated system*.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftdircmp_core::{System, SystemConfig};
use ftdircmp_noc::{Mesh, MeshConfig, RouterId, Topology, VcClass};
use ftdircmp_sim::{Cycle, DetRng, EventQueue};
use ftdircmp_workloads::WorkloadSpec;

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_system");
    g.sample_size(10);
    for name in ["water-sp", "ocean"] {
        let spec = WorkloadSpec::named(name).unwrap();
        let wl = spec.generate(16, 1);
        g.bench_with_input(BenchmarkId::new("dircmp", name), &wl, |b, wl| {
            b.iter(|| System::run_workload(SystemConfig::dircmp(), wl).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("ftdircmp", name), &wl, |b, wl| {
            b.iter(|| System::run_workload(SystemConfig::ftdircmp(), wl).unwrap());
        });
        let faulty = SystemConfig::ftdircmp().with_fault_rate(2000.0);
        g.bench_with_input(BenchmarkId::new("ftdircmp_faulty", name), &wl, |b, wl| {
            let cfg = faulty.clone();
            b.iter(|| System::run_workload(cfg.clone(), wl).unwrap());
        });
    }
    g.finish();
}

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("mesh_send_10k", |b| {
        b.iter(|| {
            let mut mesh = Mesh::new(MeshConfig::default(), DetRng::from_seed(1));
            for i in 0..10_000u64 {
                let src = RouterId::new((i % 16) as u16);
                let dst = RouterId::new(((i * 7 + 3) % 16) as u16);
                std::hint::black_box(mesh.send(
                    Cycle::new(i),
                    src,
                    dst,
                    if i % 3 == 0 { 72 } else { 8 },
                    VcClass::Request,
                ));
            }
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    // Schedule/pop churn with the simulator's typical shape: a rolling
    // window of in-flight events, each pop scheduling a couple more.
    c.bench_function("event_queue_churn_100k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..64u64 {
                q.schedule(Cycle::new(i), i);
            }
            let mut popped = 0u64;
            while popped < 100_000 {
                let (now, e) = q.pop().expect("queue never drains");
                popped += 1;
                if popped + q.len() as u64 * 2 < 100_000 + 64 {
                    q.schedule(now + 1 + (e % 7), e.wrapping_mul(31));
                    q.schedule(now + 3 + (e % 13), e.wrapping_mul(17));
                }
                std::hint::black_box(e);
            }
            std::hint::black_box(q.len())
        });
    });
}

fn bench_routing(c: &mut Criterion) {
    let topo = Topology::new(8, 8);
    // The allocation-free walker used by Mesh::send.
    c.bench_function("route_xy_iter_all_pairs", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for a in 0..64u16 {
                for bb in 0..64u16 {
                    hops += topo
                        .route_xy_iter(RouterId::new(a), RouterId::new(bb))
                        .fold(0, |acc, l| {
                            std::hint::black_box(l.dense_index());
                            acc + 1
                        });
                }
            }
            std::hint::black_box(hops)
        });
    });
    // The Vec-collecting wrapper, for comparison.
    c.bench_function("route_xy_collect_all_pairs", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for a in 0..64u16 {
                for bb in 0..64u16 {
                    hops += topo.route_xy(RouterId::new(a), RouterId::new(bb)).len();
                }
            }
            std::hint::black_box(hops)
        });
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("generate_suite", |b| {
        b.iter(|| {
            for spec in ftdircmp_workloads::suite() {
                std::hint::black_box(spec.generate(16, 7));
            }
        });
    });
}

criterion_group!(
    benches,
    bench_protocols,
    bench_mesh,
    bench_event_queue,
    bench_routing,
    bench_workload_generation
);
criterion_main!(benches);
