//! Criterion benchmarks: wall-clock performance of the simulator itself.
//!
//! These measure the *simulator* (events/second), complementing the
//! figure-regeneration binaries which measure the *simulated system*.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftdircmp_core::{System, SystemConfig};
use ftdircmp_noc::{Mesh, MeshConfig, RouterId, Topology, VcClass};
use ftdircmp_sim::{Cycle, DetRng, EventQueue};
use ftdircmp_workloads::WorkloadSpec;

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_system");
    g.sample_size(10);
    for name in ["water-sp", "ocean"] {
        let spec = WorkloadSpec::named(name).unwrap();
        let wl = spec.generate(16, 1);
        g.bench_with_input(BenchmarkId::new("dircmp", name), &wl, |b, wl| {
            b.iter(|| System::run_workload(SystemConfig::dircmp(), wl).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("ftdircmp", name), &wl, |b, wl| {
            b.iter(|| System::run_workload(SystemConfig::ftdircmp(), wl).unwrap());
        });
        let faulty = SystemConfig::ftdircmp().with_fault_rate(2000.0);
        g.bench_with_input(BenchmarkId::new("ftdircmp_faulty", name), &wl, |b, wl| {
            let cfg = faulty.clone();
            b.iter(|| System::run_workload(cfg.clone(), wl).unwrap());
        });
    }
    g.finish();
}

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("mesh_send_10k", |b| {
        b.iter(|| {
            let mut mesh = Mesh::new(MeshConfig::default(), DetRng::from_seed(1));
            for i in 0..10_000u64 {
                let src = RouterId::new((i % 16) as u16);
                let dst = RouterId::new(((i * 7 + 3) % 16) as u16);
                std::hint::black_box(mesh.send(
                    Cycle::new(i),
                    src,
                    dst,
                    if i % 3 == 0 { 72 } else { 8 },
                    VcClass::Request,
                ));
            }
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    // Schedule/pop churn with the simulator's typical shape: a rolling
    // window of in-flight events, each pop scheduling a couple more.
    c.bench_function("event_queue_churn_100k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..64u64 {
                q.schedule(Cycle::new(i), i);
            }
            let mut popped = 0u64;
            while popped < 100_000 {
                let (now, e) = q.pop().expect("queue never drains");
                popped += 1;
                if popped + q.len() as u64 * 2 < 100_000 + 64 {
                    q.schedule(now + 1 + (e % 7), e.wrapping_mul(31));
                    q.schedule(now + 3 + (e % 13), e.wrapping_mul(17));
                }
                std::hint::black_box(e);
            }
            std::hint::black_box(q.len())
        });
    });
}

/// Delay distribution recorded from a fig3 release profile (4M scheduled
/// events, log₂ histogram of `at - now`): ~55% link/router hops and cache
/// latencies of 1–63 cycles, ~9% memory accesses around 160 cycles, and a
/// heavy ~33% tail of detection-timeout arms at 1k–8k cycles.
fn recorded_delays(n: usize) -> Vec<u64> {
    let mut rng = DetRng::from_seed(0xBE9C);
    (0..n)
        .map(|_| match rng.below(100) {
            0..=6 => 1,
            7..=23 => rng.range(2, 4),
            24..=31 => rng.range(4, 8),
            32..=38 => rng.range(8, 16),
            39..=50 => rng.range(16, 32),
            51..=54 => rng.range(32, 64),
            55..=56 => rng.range(64, 128),
            57..=65 => 160, // memory controller
            66..=74 => rng.range(1_024, 2_048),
            75..=95 => rng.range(2_048, 4_096), // detection timeouts
            _ => rng.range(4_096, 8_192),
        })
        .collect()
}

/// Payload the size of the simulator's `Event` enum (a `Deliver` carries a
/// full `Message`): what the old heap actually sifted on every push/pop.
type EventPayload = [u64; 6];

/// The replaced `BinaryHeap` queue versus the calendar queue, driven by the
/// same recorded churn script: the delay mix above at the in-flight
/// population a 16-tile fig3 run sustains (roughly a thousand events —
/// in-flight messages, pipelined cache accesses and armed detection
/// timeouts). The heap reference reproduces the old implementation:
/// `Reverse<(at, seq)>` entries, FIFO within a cycle.
fn bench_queue_comparison(c: &mut Criterion) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    const POPS: u64 = 100_000;
    const IN_FLIGHT: u64 = 1024;
    let delays = recorded_delays(4096);
    let mut g = c.benchmark_group("queue_comparison");

    g.bench_function("binary_heap_recorded_churn_100k", |b| {
        b.iter(|| {
            let mut q: BinaryHeap<Reverse<(u64, u64, EventPayload)>> = BinaryHeap::new();
            let mut seq = 0u64;
            for i in 0..IN_FLIGHT {
                q.push(Reverse((i % 8, seq, [i; 6])));
                seq += 1;
            }
            let mut popped = 0u64;
            let mut di = 0usize;
            while popped < POPS {
                let Reverse((now, _, ev)) = q.pop().expect("heap never drains");
                popped += 1;
                if popped + q.len() as u64 * 2 < POPS + IN_FLIGHT {
                    for _ in 0..2 {
                        let delay = delays[di % delays.len()];
                        di += 1;
                        q.push(Reverse((now + delay, seq, [ev[0].wrapping_mul(31); 6])));
                        seq += 1;
                    }
                }
                std::hint::black_box(ev);
            }
            std::hint::black_box(q.len())
        });
    });

    g.bench_function("calendar_queue_recorded_churn_100k", |b| {
        b.iter(|| {
            let mut q: EventQueue<EventPayload> = EventQueue::new();
            for i in 0..IN_FLIGHT {
                q.schedule(Cycle::new(i % 8), [i; 6]);
            }
            let mut popped = 0u64;
            let mut di = 0usize;
            while popped < POPS {
                let (now, ev) = q.pop().expect("queue never drains");
                popped += 1;
                if popped + q.len() as u64 * 2 < POPS + IN_FLIGHT {
                    for _ in 0..2 {
                        let delay = delays[di % delays.len()];
                        di += 1;
                        q.schedule(now + delay, [ev[0].wrapping_mul(31); 6]);
                    }
                }
                std::hint::black_box(ev);
            }
            std::hint::black_box(q.len())
        });
    });

    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let topo = Topology::new(8, 8);
    // The allocation-free walker used by Mesh::send.
    c.bench_function("route_xy_iter_all_pairs", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for a in 0..64u16 {
                for bb in 0..64u16 {
                    hops += topo
                        .route_xy_iter(RouterId::new(a), RouterId::new(bb))
                        .fold(0, |acc, l| {
                            std::hint::black_box(l.dense_index());
                            acc + 1
                        });
                }
            }
            std::hint::black_box(hops)
        });
    });
    // The Vec-collecting wrapper, for comparison.
    c.bench_function("route_xy_collect_all_pairs", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for a in 0..64u16 {
                for bb in 0..64u16 {
                    hops += topo.route_xy(RouterId::new(a), RouterId::new(bb)).len();
                }
            }
            std::hint::black_box(hops)
        });
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("generate_suite", |b| {
        b.iter(|| {
            for spec in ftdircmp_workloads::suite() {
                std::hint::black_box(spec.generate(16, 7));
            }
        });
    });
}

criterion_group!(
    benches,
    bench_protocols,
    bench_mesh,
    bench_event_queue,
    bench_queue_comparison,
    bench_routing,
    bench_workload_generation
);
criterion_main!(benches);
