//! The determinism contract (DESIGN.md §Campaign runner): a simulation run
//! is a pure function of (workload spec, configuration, seed), and the
//! parallel campaign runner reproduces the sequential sweep exactly.

use ftdircmp_bench::campaign::{run_campaign, Campaign, Cell};
use ftdircmp_bench::{run_seed_fallible, run_spec};
use ftdircmp_core::{SimReport, System, SystemConfig};
use ftdircmp_noc::{Direction, FaultConfig, FaultDomainConfig, FaultEvent, RouterId};
use ftdircmp_workloads::WorkloadSpec;

/// Every observable field of the report, as a comparable string. Stats and
/// NoC counters go through Debug, which covers every counter at once.
fn fingerprint(r: &SimReport) -> String {
    format!(
        "cycles={} ops={} mem_ops={} lost={} residual={} events={} \
         max_util={:.12} mean_util={:.12}\nstats={:?}\nnoc={:?}\nviolations={:?}",
        r.cycles,
        r.total_ops,
        r.total_mem_ops,
        r.messages_lost,
        r.residual_activity,
        r.events,
        r.max_link_utilization,
        r.mean_link_utilization,
        r.stats,
        r.noc,
        r.violations,
    )
}

#[test]
fn same_seed_twice_is_identical() {
    for (name, config) in [
        ("water-sp", SystemConfig::dircmp()),
        ("ocean", SystemConfig::ftdircmp()),
        ("ocean", SystemConfig::ftdircmp().with_fault_rate(1000.0)),
    ] {
        let spec = WorkloadSpec::named(name).unwrap();
        let a = run_seed_fallible(&spec, &config, 7).unwrap();
        let b = run_seed_fallible(&spec, &config, 7).unwrap();
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{name} under {:?} diverged across identical runs",
            config.protocol
        );
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Guards against a fingerprint that compares nothing.
    let spec = WorkloadSpec::named("ocean").unwrap();
    let config = SystemConfig::ftdircmp();
    let a = run_seed_fallible(&spec, &config, 0).unwrap();
    let b = run_seed_fallible(&spec, &config, 1).unwrap();
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn parallel_campaign_matches_sequential() {
    // ≥2 specs × 3 seeds, mixed protocols — the sequential reference is
    // run_spec (what the bins did before the campaign runner existed).
    let cells = vec![
        Cell::new(
            "water-sp/dircmp",
            WorkloadSpec::named("water-sp").unwrap(),
            SystemConfig::dircmp(),
            3,
        ),
        Cell::new(
            "water-sp/ftdircmp",
            WorkloadSpec::named("water-sp").unwrap(),
            SystemConfig::ftdircmp(),
            3,
        ),
        Cell::new(
            "ocean/ftdircmp",
            WorkloadSpec::named("ocean").unwrap(),
            SystemConfig::ftdircmp(),
            3,
        ),
    ];

    let sequential: Vec<Vec<SimReport>> = cells
        .iter()
        .map(|c| run_spec(&c.spec, &c.config, c.seeds))
        .collect();
    let jobs1 = run_campaign(
        &cells,
        &Campaign {
            jobs: 1,
            progress: false,
            warmup_checkpoint: None,
        },
    );
    let jobs4 = run_campaign(
        &cells,
        &Campaign {
            jobs: 4,
            progress: false,
            warmup_checkpoint: None,
        },
    );

    for (ci, cell) in cells.iter().enumerate() {
        assert_eq!(jobs1[ci].len(), cell.seeds as usize);
        assert_eq!(jobs4[ci].len(), cell.seeds as usize);
        for seed in 0..cell.seeds as usize {
            let want = fingerprint(&sequential[ci][seed]);
            assert_eq!(
                fingerprint(&jobs1[ci][seed]),
                want,
                "{} seed {seed}: campaign(jobs=1) != run_spec",
                cell.label
            );
            assert_eq!(
                fingerprint(&jobs4[ci][seed]),
                want,
                "{} seed {seed}: campaign(jobs=4) != run_spec",
                cell.label
            );
        }
    }
}

#[test]
fn campaign_aggregates_match_sequential() {
    // The quantity the figures actually print: geomean execution-time
    // ratios must be bit-equal between parallel and sequential sweeps.
    let specs = ["water-sp", "ocean"];
    let cells: Vec<Cell> = specs
        .iter()
        .flat_map(|name| {
            let spec = WorkloadSpec::named(name).unwrap();
            [
                Cell::new(
                    format!("{name}/dircmp"),
                    spec.clone(),
                    SystemConfig::dircmp(),
                    3,
                ),
                Cell::new(
                    format!("{name}/ftdircmp"),
                    spec,
                    SystemConfig::ftdircmp(),
                    3,
                ),
            ]
        })
        .collect();

    let par = run_campaign(
        &cells,
        &Campaign {
            jobs: 4,
            progress: false,
            warmup_checkpoint: None,
        },
    );
    for (si, name) in specs.iter().enumerate() {
        let spec = WorkloadSpec::named(name).unwrap();
        let base = run_spec(&spec, &SystemConfig::dircmp(), 3);
        let ft = run_spec(&spec, &SystemConfig::ftdircmp(), 3);
        let seq_ratio = ftdircmp_bench::geomean_ratio(&ft, &base, |r| r.cycles as f64);
        let par_ratio =
            ftdircmp_bench::geomean_ratio(&par[si * 2 + 1], &par[si * 2], |r| r.cycles as f64);
        assert_eq!(
            par_ratio.to_bits(),
            seq_ratio.to_bits(),
            "{name}: parallel geomean differs from sequential"
        );
    }
}

/// A run forked from a [`System::snapshot`] is byte-identical to pausing
/// the same system in place — the core checkpoint-fork guarantee
/// (DESIGN.md §8).
#[test]
fn forked_run_matches_gated_from_scratch() {
    let spec = WorkloadSpec::named("water-sp").unwrap();
    for schedule_seed in [0, 42] {
        let faults = FaultConfig::per_million(1000.0);
        let config = SystemConfig::ftdircmp()
            .with_seed(1007)
            .with_schedule_seed(schedule_seed);
        let wl = spec.generate(config.tiles, 1007);
        let target = (wl.total_mem_ops() / 2) as u64;
        let warm = || {
            let mut cfg = config.clone();
            cfg.mesh.faults = FaultConfig::none();
            let mut sys = System::new(cfg, &wl).unwrap();
            sys.run_until_retired(target).unwrap();
            sys
        };

        // Reference: warm up and keep running in the same System.
        let mut inline = warm();
        inline.set_fault_config(faults.clone());
        let inline = inline.run().unwrap();

        // Fork: snapshot at the same point, restore into a fresh System.
        let snap = warm().snapshot();
        let mut forked = System::restore(&snap);
        forked.set_fault_config(faults);
        let forked = forked.run().unwrap();

        assert!(forked.messages_lost > 0, "faults never fired after fork");
        assert_eq!(
            fingerprint(&forked),
            fingerprint(&inline),
            "schedule_seed {schedule_seed}: forked run != uninterrupted run"
        );
    }
}

fn checkpoint_cells() -> Vec<Cell> {
    let spec = WorkloadSpec::named("water-sp").unwrap();
    let mut cells = vec![Cell::new(
        "water-sp/dircmp",
        spec.clone(),
        SystemConfig::dircmp(),
        2,
    )];
    for rate in [0.0, 500.0, 2000.0] {
        cells.push(Cell::new(
            format!("water-sp/ft-{rate:.0}"),
            spec.clone(),
            SystemConfig::ftdircmp().with_fault_rate(rate),
            2,
        ));
    }
    cells
}

/// Checkpoint-fork campaigns are schedule-independent: `--jobs 1` and
/// `--jobs N` produce bit-equal reports for every cell.
#[test]
fn checkpoint_campaign_is_jobs_invariant() {
    let cells = checkpoint_cells();
    let opts = |jobs| Campaign {
        jobs,
        progress: false,
        warmup_checkpoint: Some(60.0),
    };
    let jobs1 = run_campaign(&cells, &opts(1));
    let jobs4 = run_campaign(&cells, &opts(4));
    for (ci, cell) in cells.iter().enumerate() {
        for seed in 0..cell.seeds as usize {
            assert_eq!(
                fingerprint(&jobs1[ci][seed]),
                fingerprint(&jobs4[ci][seed]),
                "{} seed {seed}: checkpoint campaign differs across --jobs",
                cell.label
            );
        }
    }
}

fn domain_cells() -> Vec<Cell> {
    let spec = WorkloadSpec::named("water-sp").unwrap();
    let flap = FaultDomainConfig::events(vec![FaultEvent::LinkFlap {
        from: RouterId::new(5),
        dir: Direction::East,
        start: 2_000,
        end: 10_000,
    }]);
    let burst = FaultDomainConfig::events(vec![FaultEvent::RegionBurst {
        epicenter: RouterId::new(5),
        radius: 1,
        start: 2_000,
        end: 8_000,
    }]);
    vec![
        Cell::new(
            "water-sp/flap",
            spec.clone(),
            SystemConfig::ftdircmp().with_fault_domains(flap),
            2,
        ),
        Cell::new(
            "water-sp/burst",
            spec,
            SystemConfig::ftdircmp().with_fault_domains(burst),
            2,
        ),
    ]
}

/// Correlated fault-domain cells are invariant to `--jobs` and to the
/// schedule seed of the surrounding campaign, in both classic and
/// checkpoint-fork mode: per-link drop decisions are keyed by (domain
/// seed, link, per-link count), never by a shared RNG stream (DESIGN.md
/// §12).
#[test]
fn domain_campaign_is_jobs_invariant() {
    let cells = domain_cells();
    for warmup in [None, Some(60.0)] {
        let opts = |jobs| Campaign {
            jobs,
            progress: false,
            warmup_checkpoint: warmup,
        };
        let jobs1 = run_campaign(&cells, &opts(1));
        let jobs4 = run_campaign(&cells, &opts(4));
        for (ci, cell) in cells.iter().enumerate() {
            for seed in 0..cell.seeds as usize {
                assert_eq!(
                    fingerprint(&jobs1[ci][seed]),
                    fingerprint(&jobs4[ci][seed]),
                    "{} seed {seed} (warmup {warmup:?}): domain campaign differs across --jobs",
                    cell.label
                );
                assert_eq!(
                    jobs1[ci][seed].fault_epochs, jobs4[ci][seed].fault_epochs,
                    "{} seed {seed} (warmup {warmup:?}): recovery telemetry differs",
                    cell.label
                );
            }
        }
        // The classic cells actually exercised the fault domains (under
        // checkpoint-fork warmup the window may already have passed when
        // faults install, which is fine — invariance is the claim here).
        if warmup.is_none() {
            assert!(
                jobs1.iter().flatten().all(|r| r.messages_lost > 0),
                "a domain cell never dropped anything"
            );
        }
    }
}

/// Fault-free cells are unaffected by checkpoint mode: forking from a
/// fault-free warmup and continuing without faults replays the exact
/// from-scratch trajectory, so DirCMP baselines and ft-0 cells stay
/// byte-identical to the classic path.
#[test]
fn checkpoint_campaign_fault_free_cells_match_classic() {
    let cells = checkpoint_cells();
    let classic = run_campaign(
        &cells,
        &Campaign {
            jobs: 1,
            progress: false,
            warmup_checkpoint: None,
        },
    );
    let ckpt = run_campaign(
        &cells,
        &Campaign {
            jobs: 1,
            progress: false,
            warmup_checkpoint: Some(60.0),
        },
    );
    for (ci, cell) in cells.iter().enumerate() {
        if cell.config.mesh.faults.is_faulty() {
            continue;
        }
        for seed in 0..cell.seeds as usize {
            assert_eq!(
                fingerprint(&ckpt[ci][seed]),
                fingerprint(&classic[ci][seed]),
                "{} seed {seed}: fault-free cell changed under --warmup-checkpoint",
                cell.label
            );
        }
    }
}
